//! Golden-file rendering, parsing and diffing.
//!
//! Goldens are JSONL: one object per matrix cell with a fixed key order,
//!
//! ```text
//! {"scenario":"paper_fig6","policy":"priority","mode":"preemptive",
//!  "hash":"89a2…","events":73,"makespan_ps":780000000,"dispatches":9,
//!  "preemptions":2,"deadline_misses":0}
//! ```
//!
//! so the file diffs line-per-cell in version control. Because the
//! writer is in-tree and deterministic, the checker never needs a JSON
//! parser: cells are matched by their `"scenario"/"policy"/"mode"` keys
//! and compared as whole lines, with per-field extraction only to phrase
//! the drift message.

use std::collections::BTreeMap;
use std::path::PathBuf;

use rtsim_campaign::csv::CsvTable;
use rtsim_campaign::json::Json;
use rtsim_grid::record::{string_field, u64_field};

use crate::fingerprint::Fingerprint;
use crate::registry::{scenario_by_name, Cell, CellResult, PolicyKind};

/// Environment variable overriding the golden-file location (used by the
/// tamper-detection tests; normal runs use the committed file).
pub const GOLDENS_ENV: &str = "RTSIM_FARM_GOLDENS";

/// Path of the committed golden file, honouring [`GOLDENS_ENV`].
pub fn goldens_path() -> PathBuf {
    if let Ok(path) = std::env::var(GOLDENS_ENV) {
        return PathBuf::from(path);
    }
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/goldens/farm.jsonl"
    ))
}

/// Renders one cell result as its golden JSONL line (no trailing
/// newline). Multi-core cells carry a `"cores"` field right after
/// `"mode"`; single-core lines omit it, so the entire pre-SMP golden
/// file remains byte-identical under the current writer. Cells whose run
/// recorded fault injections carry a trailing `"faults"` count under the
/// same convention: fault-free lines omit it, keeping every pre-fault
/// golden line unchanged too.
pub fn render_line(result: &CellResult) -> String {
    let f = &result.fingerprint;
    let mut fields = vec![
        ("scenario", Json::from(result.cell.scenario)),
        ("policy", Json::from(result.cell.policy.key())),
        ("mode", Json::from(result.cell.mode())),
    ];
    if result.cell.cores > 1 {
        fields.push(("cores", Json::from(u64::from(result.cell.cores))));
    }
    fields.extend([
        ("hash", Json::from(f.hash_hex())),
        ("events", Json::from(f.events)),
        ("makespan_ps", Json::from(f.makespan_ps)),
        ("dispatches", Json::from(f.dispatches)),
        ("preemptions", Json::from(f.preemptions)),
        ("deadline_misses", Json::from(f.deadline_misses)),
    ]);
    if f.faults > 0 {
        fields.push(("faults", Json::from(f.faults)));
    }
    Json::obj(fields).to_string()
}

/// Renders a whole result set as golden-file contents (newline
/// terminated).
pub fn render(results: &[CellResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&render_line(r));
        out.push('\n');
    }
    out
}

/// Parses the `(scenario, policy, mode, cores)` identity of a golden
/// line. Lines without a `"cores"` field are single-core (the pre-SMP
/// format). Returns `None` on lines that are not well-formed cell
/// records.
///
/// Field extraction is the grid's flat-record scanning
/// ([`rtsim_grid::record`]); none of the values the farm writes contain
/// escapes, so the plain scan suffices.
pub fn parse_cell_key(line: &str) -> Option<(String, String, String, u8)> {
    let cores = match u64_field(line, "cores") {
        Some(c) => u8::try_from(c).ok()?,
        None => 1,
    };
    Some((
        string_field(line, "scenario")?,
        string_field(line, "policy")?,
        string_field(line, "mode")?,
        cores,
    ))
}

/// Formats a parsed cell key the way [`Cell::label`] would.
fn key_label(key: &(String, String, String, u8)) -> String {
    if key.3 > 1 {
        format!("{}/{}/{}/c{}", key.0, key.1, key.2, key.3)
    } else {
        format!("{}/{}/{}", key.0, key.1, key.2)
    }
}

/// Parses a full golden line back into the [`CellResult`] that rendered
/// it — the decode half of the grid-cache round-trip
/// (`parse_line(render_line(r)) == Some(r)`). Returns `None` on
/// malformed lines or unknown scenario/policy/mode keys.
pub fn parse_line(line: &str) -> Option<CellResult> {
    let (scenario, policy, mode, cores) = parse_cell_key(line)?;
    let scenario = scenario_by_name(&scenario)?.name;
    let policy = PolicyKind::from_key(&policy)?;
    let preemptive = match mode.as_str() {
        "preemptive" => true,
        "cooperative" => false,
        _ => return None,
    };
    Some(CellResult {
        cell: Cell {
            scenario,
            policy,
            preemptive,
            cores,
        },
        fingerprint: Fingerprint {
            hash: u64::from_str_radix(&string_field(line, "hash")?, 16).ok()?,
            events: u64_field(line, "events")?,
            makespan_ps: u64_field(line, "makespan_ps")?,
            dispatches: u64_field(line, "dispatches")?,
            preemptions: u64_field(line, "preemptions")?,
            deadline_misses: u64_field(line, "deadline_misses")?,
            // Absent on fault-free lines (the whole pre-fault file).
            faults: u64_field(line, "faults").unwrap_or(0),
        },
    })
}

/// Renders a result set as the CSV table the `rtsim-farm` and
/// `rtsim-grid` binaries emit as campaign artifacts.
pub fn render_csv(results: &[CellResult]) -> String {
    let mut table = CsvTable::new([
        "scenario",
        "policy",
        "mode",
        "cores",
        "hash",
        "events",
        "makespan_ps",
        "dispatches",
        "preemptions",
        "deadline_misses",
        "faults",
    ]);
    for r in results {
        let f = &r.fingerprint;
        table.row([
            r.cell.scenario.to_owned(),
            r.cell.policy.key().to_owned(),
            r.cell.mode().to_owned(),
            r.cell.cores.to_string(),
            f.hash_hex(),
            f.events.to_string(),
            f.makespan_ps.to_string(),
            f.dispatches.to_string(),
            f.preemptions.to_string(),
            f.deadline_misses.to_string(),
            f.faults.to_string(),
        ]);
    }
    table.to_string()
}

/// The outcome of comparing fresh results against the goldens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// One human-readable message per drifted / missing / stale cell,
    /// each naming the `(scenario, policy, mode)` involved.
    pub messages: Vec<String>,
    /// Cells compared and found identical.
    pub matched: usize,
}

impl DiffOutcome {
    /// `true` when every compared cell matched.
    pub fn is_clean(&self) -> bool {
        self.messages.is_empty()
    }
}

const FIELDS: [&str; 6] = [
    "events",
    "makespan_ps",
    "dispatches",
    "preemptions",
    "deadline_misses",
    "faults",
];

fn describe_drift(cell: &str, expected: &str, actual: &str) -> String {
    let mut changes = Vec::new();
    match (
        string_field(expected, "hash"),
        string_field(actual, "hash"),
    ) {
        (Some(e), Some(a)) if e != a => changes.push(format!("hash {e} -> {a}")),
        _ => {}
    }
    for field in FIELDS {
        match (u64_field(expected, field), u64_field(actual, field)) {
            (Some(e), Some(a)) if e != a => changes.push(format!("{field} {e} -> {a}")),
            _ => {}
        }
    }
    if changes.is_empty() {
        // Same fields yet different bytes: formatting-level corruption.
        format!("cell {cell}: golden line malformed or reordered")
    } else {
        format!("cell {cell}: {}", changes.join(", "))
    }
}

/// Compares fresh `results` against golden-file `goldens` contents.
///
/// Every result must have a byte-identical golden line; with
/// `require_complete` (a full-matrix check) every golden line must also
/// correspond to a result, so stale cells are reported too. A smoke
/// check passes `require_complete = false` because it only reruns a
/// subset of the matrix.
pub fn diff(goldens: &str, results: &[CellResult], require_complete: bool) -> DiffOutcome {
    let mut expected: BTreeMap<(String, String, String, u8), &str> = BTreeMap::new();
    let mut messages = Vec::new();
    for line in goldens.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_cell_key(line) {
            Some(key) => {
                let label = key_label(&key);
                if expected.insert(key, line).is_some() {
                    messages.push(format!("cell {label}: duplicated in goldens"));
                }
            }
            None => messages.push(format!("unparseable golden line: {line}")),
        }
    }

    let mut matched = 0;
    for result in results {
        let cell = result.cell;
        let key = (
            cell.scenario.to_owned(),
            cell.policy.key().to_owned(),
            cell.mode().to_owned(),
            cell.cores,
        );
        let actual = render_line(result);
        match expected.remove(&key) {
            None => messages.push(format!(
                "cell {}: missing from goldens (run `rtsim-farm --bless`)",
                cell.label()
            )),
            Some(line) if line == actual => matched += 1,
            Some(line) => messages.push(describe_drift(&cell.label(), line, &actual)),
        }
    }
    if require_complete {
        for key in expected.into_keys() {
            messages.push(format!(
                "cell {}: in goldens but not produced by this matrix (stale?)",
                key_label(&key)
            ));
        }
    }
    DiffOutcome { messages, matched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use crate::registry::{Cell, PolicyKind};

    fn sample(policy: PolicyKind, hash: u64) -> CellResult {
        CellResult {
            cell: Cell {
                scenario: "paper_fig6",
                policy,
                preemptive: true,
                cores: 1,
            },
            fingerprint: Fingerprint {
                hash,
                events: 73,
                makespan_ps: 780_000_000,
                dispatches: 9,
                preemptions: 2,
                deadline_misses: 0,
                faults: 0,
            },
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let line = render_line(&sample(PolicyKind::Priority, 0xdead_beef));
        assert_eq!(
            parse_cell_key(&line),
            Some((
                "paper_fig6".to_owned(),
                "priority".to_owned(),
                "preemptive".to_owned(),
                1,
            ))
        );
        // A single-core line never carries a "cores" field: the pre-SMP
        // golden format is preserved byte-for-byte.
        assert!(!line.contains("cores"), "{line}");
        assert_eq!(string_field(&line, "hash").unwrap(), "00000000deadbeef");
        assert_eq!(u64_field(&line, "events"), Some(73));
        assert_eq!(u64_field(&line, "makespan_ps"), Some(780_000_000));
    }

    #[test]
    fn parse_line_inverts_render_line() {
        let result = sample(PolicyKind::Edf, 0x1234_5678_9abc_def0);
        assert_eq!(parse_line(&render_line(&result)), Some(result));
        // Unknown keys and malformed lines are rejected, not guessed at.
        assert_eq!(parse_line(""), None);
        assert_eq!(
            parse_line(&render_line(&result).replace("paper_fig6", "no_such_scenario")),
            None
        );
        assert_eq!(
            parse_line(&render_line(&result).replace("preemptive", "sometimes")),
            None
        );
    }

    #[test]
    fn multi_core_lines_round_trip_with_their_core_count() {
        let result = CellResult {
            cell: Cell {
                scenario: "smp_global",
                policy: PolicyKind::GlobalEdf,
                preemptive: true,
                cores: 4,
            },
            fingerprint: sample(PolicyKind::Priority, 7).fingerprint,
        };
        let line = render_line(&result);
        assert!(line.contains("\"cores\":4"), "{line}");
        assert_eq!(
            parse_cell_key(&line).map(|k| k.3),
            Some(4),
            "{line}"
        );
        assert_eq!(parse_line(&line), Some(result));
        // Same cell on a different core count is a different key.
        let other = diff(&render(&[result]), &[result], true);
        assert!(other.is_clean(), "{:?}", other.messages);
    }

    #[test]
    fn fault_cells_round_trip_and_fault_free_lines_omit_the_field() {
        let mut result = sample(PolicyKind::Priority, 11);
        // Fault-free lines never carry the field: the pre-fault golden
        // format is preserved byte-for-byte.
        assert!(!render_line(&result).contains("faults"));
        result.fingerprint.faults = 7;
        let line = render_line(&result);
        assert!(line.contains("\"faults\":7"), "{line}");
        assert_eq!(parse_line(&line), Some(result));
    }

    #[test]
    fn render_csv_has_a_row_per_cell() {
        let csv = render_csv(&[sample(PolicyKind::Priority, 1), sample(PolicyKind::Fifo, 2)]);
        assert_eq!(csv.lines().count(), 3); // header + 2 rows
        assert!(csv.starts_with("scenario,policy,mode,cores,hash"));
        assert!(csv.contains("paper_fig6,fifo,preemptive,1,0000000000000002"));
    }

    #[test]
    fn identical_results_are_clean() {
        let results = [sample(PolicyKind::Priority, 1), sample(PolicyKind::Fifo, 2)];
        let goldens = render(&results);
        let outcome = diff(&goldens, &results, true);
        assert!(outcome.is_clean(), "{:?}", outcome.messages);
        assert_eq!(outcome.matched, 2);
    }

    #[test]
    fn drift_names_the_cell_and_field() {
        let golden = render(&[sample(PolicyKind::Priority, 1)]);
        let mut drifted = sample(PolicyKind::Priority, 99);
        drifted.fingerprint.preemptions = 5;
        let outcome = diff(&golden, &[drifted], true);
        assert_eq!(outcome.messages.len(), 1);
        let msg = &outcome.messages[0];
        assert!(msg.contains("paper_fig6/priority/preemptive"), "{msg}");
        assert!(msg.contains("hash"), "{msg}");
        assert!(msg.contains("preemptions 2 -> 5"), "{msg}");
    }

    #[test]
    fn missing_and_stale_cells_are_reported() {
        let goldens = render(&[sample(PolicyKind::Priority, 1)]);
        let outcome = diff(&goldens, &[sample(PolicyKind::Edf, 3)], true);
        let text = outcome.messages.join("\n");
        assert!(text.contains("paper_fig6/edf/preemptive: missing"), "{text}");
        assert!(text.contains("paper_fig6/priority/preemptive: in goldens"), "{text}");
        // A subset check ignores the untouched golden cells.
        let subset = diff(&goldens, &[sample(PolicyKind::Priority, 1)], false);
        assert!(subset.is_clean(), "{:?}", subset.messages);
    }
}
