//! The sweep matrix: every scenario × every policy × both modes, run on
//! the deterministic campaign pool.

use rtsim_comm::LockMode;
use rtsim_core::policy::{PolicyView, TaskView};
use rtsim_core::{policies, EngineKind, SchedulingPolicy};
use rtsim_kernel::{ExecMode, SimDuration, SimTime};
use rtsim_mcse::SystemModel;

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::scenarios::{
    automotive_system, contended_system, fault_burst_mpeg2_system, fault_degraded_sensor_system,
    fault_drop_automotive_system, fault_jitter_sweep_system, figure6_system, figure7_system,
    mpeg2_system, policy_sweep_system, quickstart_system, smp_global_system,
    smp_partitioned_system, AutomotiveConfig, Mpeg2Config,
};

/// Every scheduling behaviour the farm sweeps. One entry per built-in
/// policy plus a closure policy ([`policies::from_fn`]), so the
/// genericity hook itself is under regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`policies::Fifo`] — run-to-relinquish arrival order.
    Fifo,
    /// [`policies::PriorityPreemptive`] — the paper's default RTOS.
    Priority,
    /// [`policies::EarliestDeadlineFirst`].
    Edf,
    /// [`policies::RateMonotonic`] — shortest declared period wins.
    RateMonotonic,
    /// [`policies::RoundRobin`] with a 200 µs quantum.
    RoundRobin,
    /// [`policies::PriorityRoundRobin`] with a 200 µs quantum.
    PriorityRr,
    /// A closure policy built with [`policies::from_fn`]: lowest enqueue
    /// sequence first, priority preemption.
    FnPolicy,
    /// [`policies::GlobalEdf`] — EDF across every core of an SMP
    /// processor (identical to [`PolicyKind::Edf`] on one core).
    GlobalEdf,
}

impl PolicyKind {
    /// All eight behaviours, in golden-file order. `GlobalEdf` comes
    /// last so the pre-SMP golden lines keep their relative order.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Fifo,
        PolicyKind::Priority,
        PolicyKind::Edf,
        PolicyKind::RateMonotonic,
        PolicyKind::RoundRobin,
        PolicyKind::PriorityRr,
        PolicyKind::FnPolicy,
        PolicyKind::GlobalEdf,
    ];

    /// The stable key used in golden files and diffs.
    pub fn key(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Priority => "priority",
            PolicyKind::Edf => "edf",
            PolicyKind::RateMonotonic => "rate_monotonic",
            PolicyKind::RoundRobin => "round_robin",
            PolicyKind::PriorityRr => "priority_rr",
            PolicyKind::FnPolicy => "fn_policy",
            PolicyKind::GlobalEdf => "global_edf",
        }
    }

    /// Looks a kind up by its golden-file key.
    pub fn from_key(key: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.key() == key)
    }

    /// Instantiates the policy.
    pub fn make(self) -> Box<dyn SchedulingPolicy> {
        let quantum = SimDuration::from_us(200);
        match self {
            PolicyKind::Fifo => Box::new(policies::Fifo::new()),
            PolicyKind::Priority => Box::new(policies::PriorityPreemptive::new()),
            PolicyKind::Edf => Box::new(policies::EarliestDeadlineFirst::new()),
            PolicyKind::RateMonotonic => Box::new(policies::RateMonotonic::new()),
            PolicyKind::RoundRobin => Box::new(policies::RoundRobin::new(quantum)),
            PolicyKind::PriorityRr => Box::new(policies::PriorityRoundRobin::new(quantum)),
            PolicyKind::FnPolicy => Box::new(policies::from_fn(
                "fn-lowest-seq",
                |view: &PolicyView<'_>| {
                    view.ready.iter().min_by_key(|t| t.enqueue_seq).map(|t| t.id)
                },
                |_view: &PolicyView<'_>, candidate: &TaskView, running: &TaskView| {
                    candidate.priority > running.priority
                },
            )),
            PolicyKind::GlobalEdf => Box::new(policies::GlobalEdf::new()),
        }
    }
}

/// One registered scenario: a name, a builder, and a hang-guard horizon
/// the farm never simulates past.
///
/// Every scenario terminates on its own under every policy (all loops
/// are bounded, and a blocked system empties the event queue and stops);
/// the horizon only bounds the damage if a future regression introduces
/// a live-lock.
pub struct Scenario {
    /// Golden-file key.
    pub name: &'static str,
    /// Builds the un-elaborated model for a given core count. Scenarios
    /// that only make sense on one core ignore the argument (their
    /// [`Scenario::core_counts`] is `&[1]`).
    pub build: fn(u8) -> SystemModel,
    /// Hang guard passed to `run_until`.
    pub horizon: SimDuration,
    /// Core counts this scenario sweeps — the matrix's fourth axis.
    /// `&[1]` for the classic single-core scenarios.
    pub core_counts: &'static [u8],
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("horizon", &self.horizon)
            .finish()
    }
}

/// The registry: every example system as a farm scenario.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "quickstart",
        build: |_| quickstart_system(),
        horizon: SimDuration::from_ms(100),
        core_counts: &[1],
    },
    Scenario {
        name: "paper_fig6",
        build: |_| figure6_system(EngineKind::ProcedureCall),
        horizon: SimDuration::from_ms(100),
        core_counts: &[1],
    },
    Scenario {
        name: "paper_fig7",
        build: |_| figure7_system(EngineKind::ProcedureCall, LockMode::Plain),
        horizon: SimDuration::from_ms(100),
        core_counts: &[1],
    },
    Scenario {
        name: "automotive_ecu",
        build: |_| automotive_system(&AutomotiveConfig::default()),
        horizon: SimDuration::from_ms(2_000),
        core_counts: &[1],
    },
    Scenario {
        name: "mpeg2_soc",
        build: |_| {
            mpeg2_system(&Mpeg2Config {
                frames: 6,
                ..Mpeg2Config::default()
            })
        },
        horizon: SimDuration::from_ms(2_000),
        core_counts: &[1],
    },
    Scenario {
        name: "design_space",
        build: |_| policy_sweep_system(),
        horizon: SimDuration::from_ms(2_000),
        core_counts: &[1],
    },
    Scenario {
        name: "custom_policy",
        build: |_| contended_system(),
        horizon: SimDuration::from_ms(500),
        core_counts: &[1],
    },
    Scenario {
        name: "smp_partitioned",
        build: smp_partitioned_system,
        horizon: SimDuration::from_ms(200),
        core_counts: &[2],
    },
    Scenario {
        name: "smp_global",
        build: smp_global_system,
        horizon: SimDuration::from_ms(100),
        core_counts: &[2, 4],
    },
    // Fault-injection scenarios come after every nominal scenario, so
    // the pre-fault golden lines keep their relative order.
    Scenario {
        name: "fault_drop_automotive",
        build: |_| fault_drop_automotive_system(),
        horizon: SimDuration::from_ms(2_000),
        core_counts: &[1],
    },
    Scenario {
        name: "fault_jitter_sweep",
        build: |_| fault_jitter_sweep_system(),
        horizon: SimDuration::from_ms(2_000),
        core_counts: &[1],
    },
    Scenario {
        name: "fault_burst_mpeg2",
        build: |_| fault_burst_mpeg2_system(),
        horizon: SimDuration::from_ms(2_000),
        core_counts: &[1],
    },
    Scenario {
        name: "fault_degraded_sensor",
        build: |_| fault_degraded_sensor_system(),
        horizon: SimDuration::from_ms(500),
        core_counts: &[1],
    },
];

/// Looks a scenario up by name.
pub fn scenario_by_name(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// One point of the sweep: a scenario under one scheduling behaviour on
/// one core count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Scenario key (see [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Preemptive (`true`) or run-to-relinquish mode.
    pub preemptive: bool,
    /// Cores per software processor — the SMP axis. `1` for the classic
    /// matrix; multi-core cells carry the count into their label and
    /// golden line.
    pub cores: u8,
}

impl Cell {
    /// The mode key used in golden files: `preemptive` / `cooperative`.
    pub fn mode(&self) -> &'static str {
        if self.preemptive {
            "preemptive"
        } else {
            "cooperative"
        }
    }

    /// Human-readable cell label, e.g. `paper_fig6/edf/preemptive`.
    /// Multi-core cells append the core count: `smp_global/edf/preemptive/c2`
    /// (single-core labels are unchanged from the pre-SMP format, which
    /// keeps their grid cache keys stable).
    pub fn label(&self) -> String {
        if self.cores > 1 {
            format!(
                "{}/{}/{}/c{}",
                self.scenario,
                self.policy.key(),
                self.mode(),
                self.cores
            )
        } else {
            format!("{}/{}/{}", self.scenario, self.policy.key(), self.mode())
        }
    }
}

/// A fingerprinted cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellResult {
    /// Which point of the matrix.
    pub cell: Cell,
    /// What its run reduced to.
    pub fingerprint: Fingerprint,
}

/// A cell result round-trips through its golden JSONL line, which is
/// exactly what the grid's result cache stores: a warm farm sweep
/// decodes the pinned-format lines instead of re-simulating.
impl rtsim_grid::Record for CellResult {
    fn encode(&self) -> String {
        crate::golden::render_line(self)
    }
    fn decode(line: &str) -> Option<Self> {
        crate::golden::parse_line(line)
    }
}

/// The full matrix: every scenario × its core counts × every policy ×
/// both modes.
pub fn full_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for scenario in SCENARIOS {
        for &cores in scenario.core_counts {
            for policy in PolicyKind::ALL {
                for preemptive in [true, false] {
                    cells.push(Cell {
                        scenario: scenario.name,
                        policy,
                        preemptive,
                        cores,
                    });
                }
            }
        }
    }
    cells
}

/// The reduced matrix used under `RTSIM_BENCH_SMOKE=1`: the three
/// fastest scenarios × three representative policies × both modes,
/// plus one dual-core cell per SMP scenario and two fault-injection
/// cells (22 cells), so test suites can exercise the whole pipeline —
/// including the fault lanes — in seconds.
pub fn smoke_matrix() -> Vec<Cell> {
    let scenarios = ["quickstart", "paper_fig6", "design_space"];
    let policies = [PolicyKind::Priority, PolicyKind::Fifo, PolicyKind::Edf];
    let mut cells = Vec::new();
    for scenario in scenarios {
        for policy in policies {
            for preemptive in [true, false] {
                cells.push(Cell {
                    scenario,
                    policy,
                    preemptive,
                    cores: 1,
                });
            }
        }
    }
    // Two dual-core probes so the smoke sweep crosses the SMP dispatch
    // path: partitioned and global scheduling, one cell each.
    for (scenario, policy) in [
        ("smp_partitioned", PolicyKind::RateMonotonic),
        ("smp_global", PolicyKind::GlobalEdf),
    ] {
        cells.push(Cell {
            scenario,
            policy,
            preemptive: true,
            cores: 2,
        });
    }
    // Two fault-injection probes so the smoke sweep crosses the fault
    // lanes: release jitter on the periodic sweep and the degraded-mode
    // state machine, one cell each.
    for (scenario, policy) in [
        ("fault_jitter_sweep", PolicyKind::Priority),
        ("fault_degraded_sensor", PolicyKind::Priority),
    ] {
        cells.push(Cell {
            scenario,
            policy,
            preemptive: true,
            cores: 1,
        });
    }
    cells
}

/// Runs one cell to its fingerprint: build the scenario, re-point every
/// software processor at the cell's policy and mode, elaborate, run to
/// completion (bounded by the scenario's hang-guard horizon), reduce.
///
/// # Panics
///
/// Panics on an unknown scenario name or a model/kernel error — inside a
/// campaign the panic is caught and reported as that cell's failure.
pub fn run_cell(cell: Cell) -> CellResult {
    run_cell_inner(cell, None)
}

/// [`run_cell`] pinned to one kernel execution mode (thread-backed
/// processes or run-to-completion segments), immune to the
/// `RTSIM_EXEC_MODE` environment. The two modes must reduce every cell
/// to the same fingerprint — the cross-mode differential suite sweeps
/// the whole matrix through this.
///
/// # Panics
///
/// Panics on an unknown scenario name or a model/kernel error.
pub fn run_cell_with_mode(cell: Cell, mode: ExecMode) -> CellResult {
    run_cell_inner(cell, Some(mode))
}

fn run_cell_inner(cell: Cell, mode: Option<ExecMode>) -> CellResult {
    let scenario = scenario_by_name(cell.scenario)
        .unwrap_or_else(|| panic!("unknown scenario `{}`", cell.scenario));
    assert!(
        scenario.core_counts.contains(&cell.cores),
        "scenario `{}` does not register a {}-core configuration",
        cell.scenario,
        cell.cores
    );
    let mut model = (scenario.build)(cell.cores);
    model.override_schedulers(cell.preemptive, |_| cell.policy.make());
    if let Some(mode) = mode {
        model.exec_mode(mode);
    }
    let mut system = model.elaborate().expect("scenario elaborates");
    system
        .run_until(SimTime::ZERO + scenario.horizon)
        .expect("scenario runs");
    CellResult {
        cell,
        fingerprint: fingerprint(&system),
    }
}

/// The grid seed of every farm sweep. The farm's cells draw nothing
/// from their streams (each cell is a fixed scenario), but the seed is
/// still part of every cache key, so bumping it invalidates all cached
/// cell results at once.
pub const FARM_SEED: u64 = 0;

/// A matrix sweep's results plus the grid's cache/shard accounting.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Every cell's fingerprint, in cell order.
    pub results: Vec<CellResult>,
    /// Cells served from the `RTSIM_GRID_CACHE` store.
    pub hits: usize,
    /// Cells actually simulated.
    pub misses: usize,
    /// Shard count the sweep ran with.
    pub shards: usize,
}

/// Runs a set of cells through the grid ([`rtsim_grid::Grid`]) with
/// `workers` workers per shard and `shards` shards, caching per-cell
/// results in `cache` (when given). Results come back in cell order and
/// are bit-identical for any worker *and* shard count.
///
/// The per-cell cache key is the grid formula over
/// `(FARM_SEED, cell index, cell label)` — the label covers scenario,
/// policy and mode, so a registry edit that moves cells around misses
/// only the moved indices.
///
/// # Panics
///
/// Panics if any cell panicked, naming the cell.
pub fn run_matrix_sharded(
    cells: &[Cell],
    workers: usize,
    shards: usize,
    cache: Option<rtsim_grid::CacheStore>,
) -> MatrixRun {
    let mut grid = rtsim_grid::Grid::new("farm", FARM_SEED)
        .workers(workers)
        .shards(shards);
    grid = match cache {
        Some(store) => grid.cache(store),
        None => grid.no_cache(),
    };
    let report = grid.run(
        cells.len(),
        |index| cells[index].label(),
        |ctx| run_cell(cells[ctx.index()]),
    );
    MatrixRun {
        hits: report.hits(),
        misses: report.misses(),
        shards: report.shards.len(),
        results: report.records,
    }
}

/// Runs a set of cells on the deterministic pool: the historical farm
/// entry point, now a grid sweep honouring the `RTSIM_GRID_SHARDS` and
/// `RTSIM_GRID_CACHE` environment knobs (1 shard, no cache when unset).
///
/// # Panics
///
/// Panics if any cell panicked, naming the cell.
pub fn run_matrix(cells: &[Cell], workers: usize) -> Vec<CellResult> {
    run_matrix_sharded(
        cells,
        workers,
        rtsim_grid::shards_from_env(),
        rtsim_grid::CacheStore::from_env(),
    )
    .results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shapes() {
        let combos: usize = SCENARIOS.iter().map(|s| s.core_counts.len()).sum();
        assert_eq!(full_matrix().len(), combos * PolicyKind::ALL.len() * 2);
        assert_eq!(full_matrix().len(), 224); // 160 nominal + 64 fault cells
        assert_eq!(smoke_matrix().len(), 22);
        // The smoke matrix is a subset of the full one.
        let full = full_matrix();
        for cell in smoke_matrix() {
            assert!(full.contains(&cell), "{}", cell.label());
        }
    }

    #[test]
    fn policy_keys_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(PolicyKind::from_key("nope"), None);
    }

    #[test]
    fn one_cell_runs_and_policy_changes_the_fingerprint() {
        let base = Cell {
            scenario: "paper_fig6",
            policy: PolicyKind::Priority,
            preemptive: true,
            cores: 1,
        };
        let priority = run_cell(base);
        let fifo = run_cell(Cell {
            policy: PolicyKind::Fifo,
            ..base
        });
        assert_ne!(priority.fingerprint.hash, fifo.fingerprint.hash);
        // Figure 6 under its native policy: known pinned facts hold.
        assert_eq!(priority.fingerprint.makespan_ps, 775_000_000);
        assert_eq!(priority.fingerprint.preemptions, 2);
    }

    #[test]
    fn workers_do_not_change_results() {
        let cells = vec![
            Cell {
                scenario: "quickstart",
                policy: PolicyKind::Priority,
                preemptive: true,
                cores: 1,
            },
            Cell {
                scenario: "paper_fig6",
                policy: PolicyKind::Edf,
                preemptive: false,
                cores: 1,
            },
            Cell {
                scenario: "design_space",
                policy: PolicyKind::RoundRobin,
                preemptive: true,
                cores: 1,
            },
        ];
        let serial = run_matrix(&cells, 1);
        let parallel = run_matrix(&cells, 4);
        assert_eq!(serial, parallel);
    }
}
