//! The sweep matrix: every scenario × every policy × both modes, run on
//! the deterministic campaign pool.

use rtsim_comm::LockMode;
use rtsim_core::policy::{PolicyView, TaskView};
use rtsim_core::{policies, EngineKind, SchedulingPolicy};
use rtsim_kernel::{ExecMode, SimDuration, SimTime};
use rtsim_mcse::SystemModel;

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::scenarios::{
    automotive_system, contended_system, figure6_system, figure7_system, mpeg2_system,
    policy_sweep_system, quickstart_system, AutomotiveConfig, Mpeg2Config,
};

/// Every scheduling behaviour the farm sweeps. One entry per built-in
/// policy plus a closure policy ([`policies::from_fn`]), so the
/// genericity hook itself is under regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`policies::Fifo`] — run-to-relinquish arrival order.
    Fifo,
    /// [`policies::PriorityPreemptive`] — the paper's default RTOS.
    Priority,
    /// [`policies::EarliestDeadlineFirst`].
    Edf,
    /// [`policies::RateMonotonic`] — shortest declared period wins.
    RateMonotonic,
    /// [`policies::RoundRobin`] with a 200 µs quantum.
    RoundRobin,
    /// [`policies::PriorityRoundRobin`] with a 200 µs quantum.
    PriorityRr,
    /// A closure policy built with [`policies::from_fn`]: lowest enqueue
    /// sequence first, priority preemption.
    FnPolicy,
}

impl PolicyKind {
    /// All seven behaviours, in golden-file order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Fifo,
        PolicyKind::Priority,
        PolicyKind::Edf,
        PolicyKind::RateMonotonic,
        PolicyKind::RoundRobin,
        PolicyKind::PriorityRr,
        PolicyKind::FnPolicy,
    ];

    /// The stable key used in golden files and diffs.
    pub fn key(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Priority => "priority",
            PolicyKind::Edf => "edf",
            PolicyKind::RateMonotonic => "rate_monotonic",
            PolicyKind::RoundRobin => "round_robin",
            PolicyKind::PriorityRr => "priority_rr",
            PolicyKind::FnPolicy => "fn_policy",
        }
    }

    /// Looks a kind up by its golden-file key.
    pub fn from_key(key: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.key() == key)
    }

    /// Instantiates the policy.
    pub fn make(self) -> Box<dyn SchedulingPolicy> {
        let quantum = SimDuration::from_us(200);
        match self {
            PolicyKind::Fifo => Box::new(policies::Fifo::new()),
            PolicyKind::Priority => Box::new(policies::PriorityPreemptive::new()),
            PolicyKind::Edf => Box::new(policies::EarliestDeadlineFirst::new()),
            PolicyKind::RateMonotonic => Box::new(policies::RateMonotonic::new()),
            PolicyKind::RoundRobin => Box::new(policies::RoundRobin::new(quantum)),
            PolicyKind::PriorityRr => Box::new(policies::PriorityRoundRobin::new(quantum)),
            PolicyKind::FnPolicy => Box::new(policies::from_fn(
                "fn-lowest-seq",
                |view: &PolicyView<'_>| {
                    view.ready.iter().min_by_key(|t| t.enqueue_seq).map(|t| t.id)
                },
                |_view: &PolicyView<'_>, candidate: &TaskView, running: &TaskView| {
                    candidate.priority > running.priority
                },
            )),
        }
    }
}

/// One registered scenario: a name, a builder, and a hang-guard horizon
/// the farm never simulates past.
///
/// Every scenario terminates on its own under every policy (all loops
/// are bounded, and a blocked system empties the event queue and stops);
/// the horizon only bounds the damage if a future regression introduces
/// a live-lock.
pub struct Scenario {
    /// Golden-file key.
    pub name: &'static str,
    /// Builds the un-elaborated model.
    pub build: fn() -> SystemModel,
    /// Hang guard passed to `run_until`.
    pub horizon: SimDuration,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("horizon", &self.horizon)
            .finish()
    }
}

/// The registry: every example system as a farm scenario.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "quickstart",
        build: quickstart_system,
        horizon: SimDuration::from_ms(100),
    },
    Scenario {
        name: "paper_fig6",
        build: || figure6_system(EngineKind::ProcedureCall),
        horizon: SimDuration::from_ms(100),
    },
    Scenario {
        name: "paper_fig7",
        build: || figure7_system(EngineKind::ProcedureCall, LockMode::Plain),
        horizon: SimDuration::from_ms(100),
    },
    Scenario {
        name: "automotive_ecu",
        build: || automotive_system(&AutomotiveConfig::default()),
        horizon: SimDuration::from_ms(2_000),
    },
    Scenario {
        name: "mpeg2_soc",
        build: || {
            mpeg2_system(&Mpeg2Config {
                frames: 6,
                ..Mpeg2Config::default()
            })
        },
        horizon: SimDuration::from_ms(2_000),
    },
    Scenario {
        name: "design_space",
        build: policy_sweep_system,
        horizon: SimDuration::from_ms(2_000),
    },
    Scenario {
        name: "custom_policy",
        build: contended_system,
        horizon: SimDuration::from_ms(500),
    },
];

/// Looks a scenario up by name.
pub fn scenario_by_name(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// One point of the sweep: a scenario under one scheduling behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Scenario key (see [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Preemptive (`true`) or run-to-relinquish mode.
    pub preemptive: bool,
}

impl Cell {
    /// The mode key used in golden files: `preemptive` / `cooperative`.
    pub fn mode(&self) -> &'static str {
        if self.preemptive {
            "preemptive"
        } else {
            "cooperative"
        }
    }

    /// Human-readable cell label, e.g. `paper_fig6/edf/preemptive`.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.scenario, self.policy.key(), self.mode())
    }
}

/// A fingerprinted cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellResult {
    /// Which point of the matrix.
    pub cell: Cell,
    /// What its run reduced to.
    pub fingerprint: Fingerprint,
}

/// A cell result round-trips through its golden JSONL line, which is
/// exactly what the grid's result cache stores: a warm farm sweep
/// decodes the pinned-format lines instead of re-simulating.
impl rtsim_grid::Record for CellResult {
    fn encode(&self) -> String {
        crate::golden::render_line(self)
    }
    fn decode(line: &str) -> Option<Self> {
        crate::golden::parse_line(line)
    }
}

/// The full matrix: every scenario × every policy × both modes.
pub fn full_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for scenario in SCENARIOS {
        for policy in PolicyKind::ALL {
            for preemptive in [true, false] {
                cells.push(Cell {
                    scenario: scenario.name,
                    policy,
                    preemptive,
                });
            }
        }
    }
    cells
}

/// The reduced matrix used under `RTSIM_BENCH_SMOKE=1`: the three
/// fastest scenarios × three representative policies × both modes
/// (18 cells), so test suites can exercise the whole pipeline in
/// seconds.
pub fn smoke_matrix() -> Vec<Cell> {
    let scenarios = ["quickstart", "paper_fig6", "design_space"];
    let policies = [PolicyKind::Priority, PolicyKind::Fifo, PolicyKind::Edf];
    let mut cells = Vec::new();
    for scenario in scenarios {
        for policy in policies {
            for preemptive in [true, false] {
                cells.push(Cell {
                    scenario,
                    policy,
                    preemptive,
                });
            }
        }
    }
    cells
}

/// Runs one cell to its fingerprint: build the scenario, re-point every
/// software processor at the cell's policy and mode, elaborate, run to
/// completion (bounded by the scenario's hang-guard horizon), reduce.
///
/// # Panics
///
/// Panics on an unknown scenario name or a model/kernel error — inside a
/// campaign the panic is caught and reported as that cell's failure.
pub fn run_cell(cell: Cell) -> CellResult {
    run_cell_inner(cell, None)
}

/// [`run_cell`] pinned to one kernel execution mode (thread-backed
/// processes or run-to-completion segments), immune to the
/// `RTSIM_EXEC_MODE` environment. The two modes must reduce every cell
/// to the same fingerprint — the cross-mode differential suite sweeps
/// the whole matrix through this.
///
/// # Panics
///
/// Panics on an unknown scenario name or a model/kernel error.
pub fn run_cell_with_mode(cell: Cell, mode: ExecMode) -> CellResult {
    run_cell_inner(cell, Some(mode))
}

fn run_cell_inner(cell: Cell, mode: Option<ExecMode>) -> CellResult {
    let scenario = scenario_by_name(cell.scenario)
        .unwrap_or_else(|| panic!("unknown scenario `{}`", cell.scenario));
    let mut model = (scenario.build)();
    model.override_schedulers(cell.preemptive, |_| cell.policy.make());
    if let Some(mode) = mode {
        model.exec_mode(mode);
    }
    let mut system = model.elaborate().expect("scenario elaborates");
    system
        .run_until(SimTime::ZERO + scenario.horizon)
        .expect("scenario runs");
    CellResult {
        cell,
        fingerprint: fingerprint(&system),
    }
}

/// The grid seed of every farm sweep. The farm's cells draw nothing
/// from their streams (each cell is a fixed scenario), but the seed is
/// still part of every cache key, so bumping it invalidates all cached
/// cell results at once.
pub const FARM_SEED: u64 = 0;

/// A matrix sweep's results plus the grid's cache/shard accounting.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Every cell's fingerprint, in cell order.
    pub results: Vec<CellResult>,
    /// Cells served from the `RTSIM_GRID_CACHE` store.
    pub hits: usize,
    /// Cells actually simulated.
    pub misses: usize,
    /// Shard count the sweep ran with.
    pub shards: usize,
}

/// Runs a set of cells through the grid ([`rtsim_grid::Grid`]) with
/// `workers` workers per shard and `shards` shards, caching per-cell
/// results in `cache` (when given). Results come back in cell order and
/// are bit-identical for any worker *and* shard count.
///
/// The per-cell cache key is the grid formula over
/// `(FARM_SEED, cell index, cell label)` — the label covers scenario,
/// policy and mode, so a registry edit that moves cells around misses
/// only the moved indices.
///
/// # Panics
///
/// Panics if any cell panicked, naming the cell.
pub fn run_matrix_sharded(
    cells: &[Cell],
    workers: usize,
    shards: usize,
    cache: Option<rtsim_grid::CacheStore>,
) -> MatrixRun {
    let mut grid = rtsim_grid::Grid::new("farm", FARM_SEED)
        .workers(workers)
        .shards(shards);
    grid = match cache {
        Some(store) => grid.cache(store),
        None => grid.no_cache(),
    };
    let report = grid.run(
        cells.len(),
        |index| cells[index].label(),
        |ctx| run_cell(cells[ctx.index()]),
    );
    MatrixRun {
        hits: report.hits(),
        misses: report.misses(),
        shards: report.shards.len(),
        results: report.records,
    }
}

/// Runs a set of cells on the deterministic pool: the historical farm
/// entry point, now a grid sweep honouring the `RTSIM_GRID_SHARDS` and
/// `RTSIM_GRID_CACHE` environment knobs (1 shard, no cache when unset).
///
/// # Panics
///
/// Panics if any cell panicked, naming the cell.
pub fn run_matrix(cells: &[Cell], workers: usize) -> Vec<CellResult> {
    run_matrix_sharded(
        cells,
        workers,
        rtsim_grid::shards_from_env(),
        rtsim_grid::CacheStore::from_env(),
    )
    .results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shapes() {
        assert_eq!(full_matrix().len(), SCENARIOS.len() * 7 * 2);
        assert_eq!(smoke_matrix().len(), 18);
        // The smoke matrix is a subset of the full one.
        let full = full_matrix();
        for cell in smoke_matrix() {
            assert!(full.contains(&cell), "{}", cell.label());
        }
    }

    #[test]
    fn policy_keys_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(PolicyKind::from_key("nope"), None);
    }

    #[test]
    fn one_cell_runs_and_policy_changes_the_fingerprint() {
        let base = Cell {
            scenario: "paper_fig6",
            policy: PolicyKind::Priority,
            preemptive: true,
        };
        let priority = run_cell(base);
        let fifo = run_cell(Cell {
            policy: PolicyKind::Fifo,
            ..base
        });
        assert_ne!(priority.fingerprint.hash, fifo.fingerprint.hash);
        // Figure 6 under its native policy: known pinned facts hold.
        assert_eq!(priority.fingerprint.makespan_ps, 775_000_000);
        assert_eq!(priority.fingerprint.preemptions, 2);
    }

    #[test]
    fn workers_do_not_change_results() {
        let cells = vec![
            Cell {
                scenario: "quickstart",
                policy: PolicyKind::Priority,
                preemptive: true,
            },
            Cell {
                scenario: "paper_fig6",
                policy: PolicyKind::Edf,
                preemptive: false,
            },
            Cell {
                scenario: "design_space",
                policy: PolicyKind::RoundRobin,
                preemptive: true,
            },
        ];
        let serial = run_matrix(&cells, 1);
        let parallel = run_matrix(&cells, 4);
        assert_eq!(serial, parallel);
    }
}
