//! Job-spec → registry resolution: the naming layer between an external
//! request (an HTTP body, a CLI argument) and a farm matrix cell.
//!
//! `rtsim-serve` accepts jobs either by name — scenario / policy / mode
//! keys, exactly the strings the golden files use — or as a raw grid
//! spec, the cell's index in the full matrix. Both resolve to the same
//! [`ResolvedJob`]: the [`Cell`] to simulate plus its global index in
//! [`full_matrix`] order, from which the `grid-cache-v1` key follows.
//! Because the index and the label are the same ones `rtsim-farm` /
//! `rtsim-grid` use when sweeping the full matrix through a grid, a
//! result computed by a one-shot sweep and a result computed by the
//! server are interchangeable cache entries — and byte-identical
//! records.

use crate::registry::{full_matrix, scenario_by_name, Cell, PolicyKind, FARM_SEED};

/// Why a job spec failed to resolve. Each variant names the offending
/// value so a 4xx response can echo it back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// No registered scenario has this name.
    UnknownScenario(String),
    /// No policy kind has this golden-file key.
    UnknownPolicy(String),
    /// The mode is neither `preemptive` nor `cooperative`.
    UnknownMode(String),
    /// The scenario exists but does not register this core count.
    UnknownCoreCount(String, u8),
    /// The raw cell index is outside the full matrix.
    CellOutOfRange(usize),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownScenario(s) => write!(f, "unknown scenario {s:?}"),
            SpecError::UnknownPolicy(p) => write!(f, "unknown policy {p:?}"),
            SpecError::UnknownMode(m) => {
                write!(f, "unknown mode {m:?} (expected preemptive|cooperative)")
            }
            SpecError::UnknownCoreCount(s, c) => {
                write!(f, "scenario {s:?} has no {c}-core configuration")
            }
            SpecError::CellOutOfRange(i) => {
                write!(f, "cell index {i} is outside the {}-cell matrix", full_matrix().len())
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A resolved job: the matrix cell plus its global index in
/// [`full_matrix`] order (the grid's job index for the farm sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedJob {
    /// Index of the cell in [`full_matrix`] order.
    pub index: usize,
    /// The cell itself.
    pub cell: Cell,
}

impl ResolvedJob {
    /// The job's `grid-cache-v1` key: the exact formula
    /// [`run_matrix_sharded`](crate::registry::run_matrix_sharded)
    /// applies — `(FARM_SEED, full-matrix index, cell label)` — so a
    /// cache warmed by `rtsim-farm`/`rtsim-grid` full sweeps is hit by
    /// the server and vice versa.
    pub fn cache_key(&self) -> u64 {
        rtsim_grid::job_key(FARM_SEED, self.index as u64, &self.cell.label())
    }
}

/// Resolves a named spec (`scenario`, `policy`, `mode`, `cores` —
/// golden-file keys; `cores` is `1` for the classic single-core cells)
/// against the registry.
///
/// # Errors
///
/// Returns the first [`SpecError`] encountered, checking scenario, then
/// policy, then mode, then core count.
pub fn resolve(
    scenario: &str,
    policy: &str,
    mode: &str,
    cores: u8,
) -> Result<ResolvedJob, SpecError> {
    let entry = scenario_by_name(scenario)
        .ok_or_else(|| SpecError::UnknownScenario(scenario.to_owned()))?;
    let policy = PolicyKind::from_key(policy)
        .ok_or_else(|| SpecError::UnknownPolicy(policy.to_owned()))?;
    let preemptive = match mode {
        "preemptive" => true,
        "cooperative" => false,
        other => return Err(SpecError::UnknownMode(other.to_owned())),
    };
    if !entry.core_counts.contains(&cores) {
        return Err(SpecError::UnknownCoreCount(entry.name.to_owned(), cores));
    }
    let cell = Cell {
        scenario: entry.name,
        policy,
        preemptive,
        cores,
    };
    let index = full_matrix()
        .iter()
        .position(|c| *c == cell)
        .expect("every registry cell appears in the full matrix");
    Ok(ResolvedJob { index, cell })
}

/// Resolves a raw grid spec: the cell's index in [`full_matrix`] order.
///
/// # Errors
///
/// [`SpecError::CellOutOfRange`] when the index exceeds the matrix.
pub fn resolve_index(index: usize) -> Result<ResolvedJob, SpecError> {
    full_matrix()
        .get(index)
        .map(|&cell| ResolvedJob { index, cell })
        .ok_or(SpecError::CellOutOfRange(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_specs_resolve_to_full_matrix_positions() {
        let job = resolve("paper_fig6", "edf", "preemptive", 1).unwrap();
        assert_eq!(job.cell.scenario, "paper_fig6");
        assert_eq!(job.cell.policy, PolicyKind::Edf);
        assert!(job.cell.preemptive);
        assert_eq!(job.cell.cores, 1);
        assert_eq!(full_matrix()[job.index], job.cell);
        // The raw-index form round-trips to the same job.
        assert_eq!(resolve_index(job.index).unwrap(), job);
    }

    #[test]
    fn every_matrix_cell_resolves_back_to_its_own_index() {
        for (index, cell) in full_matrix().into_iter().enumerate() {
            let job =
                resolve(cell.scenario, cell.policy.key(), cell.mode(), cell.cores).unwrap();
            assert_eq!(job.index, index, "{}", cell.label());
            assert_eq!(job.cell, cell);
        }
    }

    #[test]
    fn multi_core_specs_resolve_and_bad_core_counts_are_named() {
        let job = resolve("smp_global", "global_edf", "preemptive", 4).unwrap();
        assert_eq!(job.cell.cores, 4);
        assert_eq!(full_matrix()[job.index], job.cell);
        let err = resolve("smp_global", "global_edf", "preemptive", 3).unwrap_err();
        assert_eq!(err, SpecError::UnknownCoreCount("smp_global".into(), 3));
        assert!(err.to_string().contains("3-core"), "{err}");
        // Single-core scenarios reject multi-core requests the same way.
        assert_eq!(
            resolve("quickstart", "fifo", "preemptive", 2),
            Err(SpecError::UnknownCoreCount("quickstart".into(), 2))
        );
    }

    #[test]
    fn cache_key_matches_the_grid_formula() {
        let job = resolve("quickstart", "fifo", "cooperative", 1).unwrap();
        assert_eq!(
            job.cache_key(),
            rtsim_grid::job_key(FARM_SEED, job.index as u64, &job.cell.label()),
        );
    }

    #[test]
    fn bad_specs_name_the_offending_field() {
        assert_eq!(
            resolve("nope", "edf", "preemptive", 1),
            Err(SpecError::UnknownScenario("nope".into()))
        );
        assert_eq!(
            resolve("paper_fig6", "lifo", "preemptive", 1),
            Err(SpecError::UnknownPolicy("lifo".into()))
        );
        assert_eq!(
            resolve("paper_fig6", "edf", "sometimes", 1),
            Err(SpecError::UnknownMode("sometimes".into()))
        );
        let out = resolve_index(10_000).unwrap_err();
        assert_eq!(out, SpecError::CellOutOfRange(10_000));
        assert!(out
            .to_string()
            .contains(&format!("{}-cell", full_matrix().len())));
    }
}
