//! Reducing a finished simulation to a stable 64-bit fingerprint.
//!
//! The hash input is the canonical trace text ([`rtsim_trace::canonical`])
//! followed by integer summary lines: per-task response-time min/mean/max
//! (picoseconds), per-processor scheduler counters, and the makespan.
//! Everything hashed is an integer rendered in decimal, so the
//! fingerprint is immune to float-formatting differences and identical
//! across platforms; any behavioural change — one event reordered, one
//! preemption moved by a picosecond — changes it.

use std::fmt::Write as _;

use rtsim_mcse::ElaboratedSystem;
use rtsim_trace::{canonical, ActorKind, Measure};

// The hasher itself moved down into `rtsim_campaign::hash` so the
// grid's cache keys and the farm's fingerprints share one primitive;
// re-exported here because `rtsim_farm::Fnv1a` is the historical path.
pub use rtsim_campaign::Fnv1a;

/// The reduction of one finished run: a behaviour hash plus the integer
/// summary metrics pinned alongside it in the goldens (so a drift report
/// can say *what kind* of change happened, not just that one did).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// FNV-1a over the canonical trace and the summary lines below.
    pub hash: u64,
    /// Number of trace records.
    pub events: u64,
    /// Time of the last trace record in picoseconds (the instant all
    /// activity ceased).
    pub makespan_ps: u64,
    /// Task dispatches summed over all software processors.
    pub dispatches: u64,
    /// Preemptions summed over all software processors.
    pub preemptions: u64,
    /// Deadline misses summed over all software processors.
    pub deadline_misses: u64,
    /// Fault-injection records in the trace (drops, jitter, bursts, mode
    /// changes). Zero for every cell without a fault plan, so the
    /// pre-fault golden lines stay byte-identical (the field is omitted
    /// from golden lines when zero).
    pub faults: u64,
}

impl Fingerprint {
    /// The hash as the 16-digit hex string used in golden files.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// Fingerprints a finished system: canonical trace + per-task response
/// summaries + per-processor scheduler counters + makespan.
///
/// The system must already have been run; the fingerprint covers exactly
/// what has been recorded so far.
pub fn fingerprint(system: &ElaboratedSystem) -> Fingerprint {
    let trace = system.trace();
    let mut text = canonical(&trace);

    // Per-task response-time summaries, in actor-index order. All values
    // are integer picoseconds; the mean uses integer division so no float
    // ever enters the hash input.
    let measure = Measure::new(&trace);
    for actor in trace.actors_of_kind(ActorKind::Task) {
        let responses = measure.response_times(actor);
        let (min, mean, max) = if responses.is_empty() {
            (0, 0, 0)
        } else {
            let min = responses.iter().copied().min().unwrap().as_ps();
            let max = responses.iter().copied().max().unwrap().as_ps();
            let total: u128 = responses.iter().map(|d| u128::from(d.as_ps())).sum();
            let mean = (total / responses.len() as u128) as u64;
            (min, mean, max)
        };
        let _ = writeln!(
            text,
            "task {} jobs {} response {min} {mean} {max}",
            actor.index(),
            responses.len(),
        );
    }

    // Per-processor scheduler counters. processor_names() iterates the
    // declaration order of the model, which is itself deterministic.
    let mut dispatches = 0;
    let mut preemptions = 0;
    let mut deadline_misses = 0;
    let names: Vec<String> = system.processor_names().map(str::to_owned).collect();
    for name in &names {
        let stats = system.processor_stats(name).expect("declared processor");
        let _ = writeln!(
            text,
            "proc {name} {} {} {} {} {}",
            stats.dispatches,
            stats.preemptions,
            stats.scheduler_runs,
            stats.quantum_expirations,
            stats.deadline_misses,
        );
        dispatches += stats.dispatches;
        preemptions += stats.preemptions;
        deadline_misses += stats.deadline_misses;
    }

    // The time of the last recorded event, not `system.now()`: the farm
    // drives runs through `run_until(horizon)`, which leaves the clock at
    // the hang-guard horizon rather than at the instant activity ceased.
    let makespan_ps = trace.horizon().as_ps();
    let _ = writeln!(text, "makespan {makespan_ps}");

    // Fault records are already hashed through the canonical `F` lines;
    // the count is carried alongside so a fault-cell drift report can say
    // "the injection pattern moved", not just "the hash moved".
    let faults = trace
        .records()
        .iter()
        .filter(|r| matches!(r.data, rtsim_trace::TraceData::Fault { .. }))
        .count() as u64;

    let mut hasher = Fnv1a::new();
    hasher.write(text.as_bytes());
    Fingerprint {
        hash: hasher.finish(),
        events: trace.records().len() as u64,
        makespan_ps,
        dispatches,
        preemptions,
        deadline_misses,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::figure6_system;
    use rtsim_core::EngineKind;

    fn run_figure6() -> Fingerprint {
        let mut system = figure6_system(EngineKind::ProcedureCall)
            .elaborate()
            .unwrap();
        system.run().unwrap();
        fingerprint(&system)
    }

    #[test]
    fn fingerprint_is_reproducible() {
        let a = run_figure6();
        let b = run_figure6();
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_reflects_known_figure6_facts() {
        let f = run_figure6();
        assert_eq!(f.makespan_ps, 775_000_000); // last record; run ends 780 us
        assert_eq!(f.events, 73);
        assert_eq!(f.dispatches, 9);
        assert_eq!(f.preemptions, 2);
        assert_eq!(f.deadline_misses, 0);
        assert_eq!(f.faults, 0); // no fault plan: no fault records
    }

    #[test]
    fn different_engines_differ() {
        let b = run_figure6();
        let mut system = figure6_system(EngineKind::DedicatedThread)
            .elaborate()
            .unwrap();
        system.run().unwrap();
        let a = fingerprint(&system);
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn hash_hex_is_16_digits() {
        assert_eq!(run_figure6().hash_hex().len(), 16);
    }
}
