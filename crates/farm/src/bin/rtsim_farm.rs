//! The regression-farm driver.
//!
//! ```text
//! rtsim-farm            run the matrix and print the fingerprint table
//! rtsim-farm --check    compare against tests/goldens/farm.jsonl;
//!                       exit 1 with a per-cell diff on drift
//! rtsim-farm --bless    rerun the FULL matrix and rewrite the goldens
//! rtsim-farm --list     list scenarios and policies without running
//! ```
//!
//! `RTSIM_WORKERS` sets the pool width (results are identical for any
//! value); `RTSIM_GRID_SHARDS` / `RTSIM_GRID_CACHE` shard the sweep and
//! cache per-cell results (also identical for any value — see
//! `rtsim-grid`); `RTSIM_BENCH_SMOKE=1` shrinks the run and `--check` to
//! the smoke subset of the matrix; `RTSIM_CAMPAIGN_OUT=<dir>`
//! additionally writes the results as `farm.jsonl` / `farm.csv`
//! artifacts; `RTSIM_FARM_GOLDENS` overrides the golden-file path.

use std::process::ExitCode;

use rtsim_campaign::{smoke, workers_from_env, write_campaign_outputs};
use rtsim_farm::registry::{full_matrix, run_matrix_sharded, smoke_matrix, PolicyKind, SCENARIOS};
use rtsim_farm::{diff, goldens_path, render, render_csv, CellResult};
use rtsim_grid::{shards_from_env, CacheStore};

fn run(cells: Vec<rtsim_farm::Cell>) -> Vec<CellResult> {
    let workers = workers_from_env();
    let shards = shards_from_env();
    let cache = CacheStore::from_env();
    let cached = cache.is_some();
    println!(
        "running {} cells on {workers} workers x {shards} shard(s) (registry: {} scenarios x {} policies x 2 modes)",
        cells.len(),
        SCENARIOS.len(),
        PolicyKind::ALL.len(),
    );
    let sweep = run_matrix_sharded(&cells, workers, shards, cache);
    if cached {
        println!(
            "cache: {} hit(s), {} miss(es)",
            sweep.hits, sweep.misses
        );
    }
    let results = sweep.results;
    write_campaign_outputs("farm", &render(&results), &render_csv(&results));
    results
}

fn print_table(results: &[CellResult]) {
    println!(
        "{:<16} {:<15} {:<12} {:>16} {:>7} {:>13} {:>6} {:>7} {:>7}",
        "scenario", "policy", "mode", "hash", "events", "makespan_us", "disp", "preempt", "misses"
    );
    for r in results {
        let f = &r.fingerprint;
        println!(
            "{:<16} {:<15} {:<12} {:>16} {:>7} {:>13} {:>6} {:>7} {:>7}",
            r.cell.scenario,
            r.cell.policy.key(),
            r.cell.mode(),
            f.hash_hex(),
            f.events,
            f.makespan_ps / 1_000_000,
            f.dispatches,
            f.preemptions,
            f.deadline_misses,
        );
    }
}

fn check() -> ExitCode {
    let path = goldens_path();
    let goldens = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cannot read goldens {}: {e}\nrun `rtsim-farm --bless` to create them",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let smoke_run = smoke();
    let cells = if smoke_run { smoke_matrix() } else { full_matrix() };
    let results = run(cells);
    let outcome = diff(&goldens, &results, !smoke_run);
    if outcome.is_clean() {
        println!(
            "OK: {} cells match {}{}",
            outcome.matched,
            path.display(),
            if smoke_run { " (smoke subset)" } else { "" },
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: {} cells drifted from {} ({} matched):",
            outcome.messages.len(),
            path.display(),
            outcome.matched,
        );
        for msg in &outcome.messages {
            eprintln!("  {msg}");
        }
        eprintln!("if the change is intentional, re-pin with `rtsim-farm --bless`");
        ExitCode::FAILURE
    }
}

fn bless() -> ExitCode {
    // Blessing always covers the full matrix: a smoke-sized golden file
    // would make every full --check fail as incomplete.
    let results = run(full_matrix());
    let path = goldens_path();
    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    match std::fs::write(&path, render(&results)) {
        Ok(()) => {
            println!("blessed {} cells into {}", results.len(), path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn list() -> ExitCode {
    println!("scenarios ({}):", SCENARIOS.len());
    for s in SCENARIOS {
        println!("  {:<16} horizon {}", s.name, s.horizon);
    }
    println!("policies ({}):", PolicyKind::ALL.len());
    for p in PolicyKind::ALL {
        println!("  {}", p.key());
    }
    println!("modes: preemptive, cooperative");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            let cells = if smoke() { smoke_matrix() } else { full_matrix() };
            let results = run(cells);
            print_table(&results);
            ExitCode::SUCCESS
        }
        Some("--check") => check(),
        Some("--bless") => bless(),
        Some("--list") => list(),
        Some(other) => {
            eprintln!("unknown argument `{other}`; usage: rtsim-farm [--check|--bless|--list]");
            ExitCode::FAILURE
        }
    }
}
