//! The sharded-grid driver: the farm's 160-cell matrix as a
//! campaign-of-campaigns with content-addressed result caching.
//!
//! ```text
//! rtsim-grid                 run the matrix through the grid and print
//!                            the per-shard summary table
//! rtsim-grid --shards N      override the shard count (else
//!                            RTSIM_GRID_SHARDS, else 1)
//! rtsim-grid --merge         additionally write per-shard
//!                            grid.shard<i>.jsonl plus merged
//!                            grid.jsonl / grid.csv artifacts
//!                            (RTSIM_CAMPAIGN_OUT names the directory)
//! rtsim-grid --check-cache   cold run, then warm run at a different
//!                            shard count; exit 1 unless the warm run is
//!                            100 % cache hits with byte-identical
//!                            merged JSONL
//! ```
//!
//! `RTSIM_GRID_CACHE=<dir>` names the result cache (`--check-cache`
//! creates and removes a temporary one when unset); `RTSIM_WORKERS`
//! sets the per-shard pool width; `RTSIM_BENCH_SMOKE=1` shrinks the
//! matrix to the smoke subset. Merged results are bit-identical for any
//! worker and shard count.

use std::process::ExitCode;

use rtsim_campaign::{smoke, workers_from_env, write_artifact};
use rtsim_farm::registry::{full_matrix, smoke_matrix, FARM_SEED};
use rtsim_farm::{render_csv, Cell, CellResult};
use rtsim_grid::{shards_from_env, CacheStore, Grid, GridReport, CACHE_ENV};

fn matrix() -> Vec<Cell> {
    if smoke() {
        smoke_matrix()
    } else {
        full_matrix()
    }
}

fn run_grid(cells: &[Cell], shards: usize, cache: Option<CacheStore>) -> GridReport<CellResult> {
    let mut grid = Grid::new("farm", FARM_SEED)
        .workers(workers_from_env())
        .shards(shards);
    grid = match cache {
        Some(store) => grid.cache(store),
        None => grid.no_cache(),
    };
    grid.run(
        cells.len(),
        |index| cells[index].label(),
        |ctx| rtsim_farm::registry::run_cell(cells[ctx.index()]),
    )
}

fn print_summary(report: &GridReport<CellResult>, cached: bool) {
    println!(
        "grid `{}`: {} jobs, {} shard(s) x {} worker(s), {:.1} ms",
        report.name,
        report.jobs,
        report.shards.len(),
        report.workers,
        report.wall.as_secs_f64() * 1e3,
    );
    println!(
        "{:<7} {:>6} {:>6} {:>6} {:>7} {:>10}",
        "shard", "start", "jobs", "hits", "misses", "wall_ms"
    );
    for s in &report.shards {
        println!(
            "{:<7} {:>6} {:>6} {:>6} {:>7} {:>10.1}",
            s.shard,
            s.start,
            s.jobs,
            s.hits,
            s.misses,
            s.wall.as_secs_f64() * 1e3,
        );
    }
    if cached {
        println!(
            "cache: {} hit(s), {} miss(es) ({:.0} % hit rate)",
            report.hits(),
            report.misses(),
            report.hit_rate() * 100.0,
        );
    }
}

fn run(shards: usize, merge: bool) -> ExitCode {
    let cells = matrix();
    let cache = CacheStore::from_env();
    let cached = cache.is_some();
    let report = run_grid(&cells, shards, cache);
    print_summary(&report, cached);
    if merge {
        for s in &report.shards {
            write_artifact(
                &format!("grid.shard{}.jsonl", s.shard),
                &report.shard_jsonl(s.shard),
            );
        }
        write_artifact("grid.jsonl", &report.merged_jsonl());
        write_artifact("grid.csv", &render_csv(&report.records));
    }
    ExitCode::SUCCESS
}

/// Cold run then warm run at a different shard count: the warm run must
/// be served entirely from the cache and reproduce the merged JSONL
/// byte-for-byte. This is the round-trip `tools/check_hermetic.sh`
/// exercises in smoke mode.
fn check_cache(shards: usize) -> ExitCode {
    let cells = matrix();
    // A scratch store unless the user pointed RTSIM_GRID_CACHE somewhere.
    let (store, scratch) = match CacheStore::from_env() {
        Some(store) => (store, None),
        None => {
            let dir = std::env::temp_dir().join(format!("rtsim-grid-check-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            (CacheStore::new(&dir), Some(dir))
        }
    };
    println!(
        "check-cache: {} cells, cache at {} ({} preexisting entries)",
        cells.len(),
        store.dir().display(),
        store.len(),
    );
    let preexisting = store.len();
    let cold = run_grid(&cells, shards, Some(store.clone()));
    print_summary(&cold, true);
    // A different shard count on the warm pass proves keys are global.
    let warm = run_grid(&cells, shards + 1, Some(store.clone()));
    print_summary(&warm, true);
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut failures = Vec::new();
    if preexisting == 0 && cold.hits() != 0 {
        failures.push(format!("cold run hit {} times in a fresh cache", cold.hits()));
    }
    if warm.hits() != cells.len() {
        failures.push(format!(
            "warm run hit {}/{} (expected 100 %)",
            warm.hits(),
            cells.len()
        ));
    }
    if warm.merged_jsonl() != cold.merged_jsonl() {
        failures.push("warm merged JSONL differs from cold".to_owned());
    }
    if warm.records != cold.records {
        failures.push("warm decoded records differ from cold".to_owned());
    }
    if failures.is_empty() {
        println!(
            "OK: warm rerun at {} shard(s) was {}/{} hits, byte-identical",
            shards + 1,
            warm.hits(),
            cells.len(),
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: rtsim-grid [--shards N] [--merge|--check-cache]");
    eprintln!("env: {CACHE_ENV}=<dir>, RTSIM_GRID_SHARDS, RTSIM_WORKERS, RTSIM_BENCH_SMOKE");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shards = shards_from_env();
    let mut merge = false;
    let mut check = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--shards" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => shards = n.max(1),
                None => {
                    eprintln!("--shards needs a positive integer");
                    return usage();
                }
            },
            "--merge" => merge = true,
            "--check-cache" => check = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    if check && merge {
        eprintln!("--merge and --check-cache are mutually exclusive");
        return usage();
    }
    if check {
        check_cache(shards)
    } else {
        run(shards, merge)
    }
}
