//! # rtsim-farm — the regression farm
//!
//! Golden-fingerprint sweeps of every example scenario across the whole
//! scheduling-policy matrix, on top of the deterministic
//! [`rtsim_campaign`] pool.
//!
//! The farm answers one question continuously: *did any simulation
//! behaviour change?* It does so by brute force and determinism rather
//! than by hand-picked assertions:
//!
//! 1. [`scenarios`] holds a builder for every example system
//!    (quickstart, the paper's Figures 6 and 7, the MPEG-2 SoC, the
//!    automotive ECU pair, the policy-sweep and contended workloads);
//! 2. [`registry`] crosses each scenario with every built-in scheduling
//!    policy × preemptive/non-preemptive mode and runs the resulting
//!    cells on a [`Campaign`](rtsim_campaign::Campaign), so the sweep is
//!    parallel yet bit-identical for any `RTSIM_WORKERS`;
//! 3. [`fingerprint`] reduces each run to a 64-bit FNV-1a hash over the
//!    canonical trace ([`rtsim_trace::canonical`]) plus integer summary
//!    metrics — any change in dispatch order, preemption instants or
//!    overhead placement changes the hash;
//! 4. [`golden`] renders the results as JSONL, compares them against the
//!    pinned goldens in `tests/goldens/farm.jsonl`, and names exactly
//!    which (scenario, policy, mode) cells drifted.
//!
//! The `rtsim-farm` binary drives it: `rtsim-farm --check` fails with a
//! diff when behaviour drifts, `rtsim-farm --bless` re-pins the goldens
//! after an intentional change. `RTSIM_BENCH_SMOKE=1` shrinks `--check`
//! to a subset so test suites can run it in seconds.

#![warn(missing_docs)]

pub mod fingerprint;
pub mod golden;
pub mod registry;
pub mod scenarios;
pub mod spec;

pub use fingerprint::{fingerprint, Fingerprint, Fnv1a};
pub use golden::{diff, goldens_path, parse_cell_key, parse_line, render, render_csv, DiffOutcome};
pub use registry::{
    run_cell, run_cell_with_mode, run_matrix, run_matrix_sharded, Cell, CellResult, MatrixRun,
    PolicyKind, Scenario, FARM_SEED, SCENARIOS,
};
pub use spec::{ResolvedJob, SpecError};
