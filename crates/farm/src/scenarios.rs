//! Ready-made models of the paper's experimental systems.
//!
//! These builders are shared by the examples, the integration tests and
//! the benchmark harnesses that regenerate the paper's figures:
//!
//! - [`figure6_system`] — the §5 TimeLine system (hardware `Clock` +
//!   `Function_1/2/3` under a 5 µs-overhead priority-preemptive RTOS);
//! - [`figure7_system`] — the mutual-exclusion / priority-inversion
//!   scenario, parameterized by the lock protection mode;
//! - [`ab_stress_system`] — a scheduling-heavy synthetic workload for the
//!   §4 approach-A versus approach-B simulation-speed comparison;
//! - [`mpeg2_system`] — the MPEG-2 compress/decompress SoC case study:
//!   18 functions over 6 processing resources, 3 of them software
//!   processors running the RTOS model;
//! - [`quickstart_system`] — the quickstart example's interrupt-plus-
//!   background system;
//! - [`policy_sweep_system`] — the `design_space` example's four-periodic-
//!   task policy-comparison workload;
//! - [`contended_system`] — the `custom_policy` example's contended
//!   reference workload;
//! - [`automotive_system`] — the two-ECU engine-control extension;
//! - [`smp_partitioned_system`] — four periodic tasks first-fit-packed
//!   and pinned onto an N-core processor (partitioned rate-monotonic);
//! - [`smp_global_system`] — phase-shifted floating tasks on an N-core
//!   processor with a non-zero migration overhead (global scheduling);
//! - [`fault_drop_automotive_system`] / [`fault_jitter_sweep_system`] /
//!   [`fault_burst_mpeg2_system`] / [`fault_degraded_sensor_system`] —
//!   the systems above under deterministic fault plans (message dropout,
//!   release jitter, transient overload, degraded-mode entry).
//!
//! Every builder returns an un-elaborated [`SystemModel`], so callers can
//! still add constraints or re-point the schedulers (see
//! [`SystemModel::override_schedulers`]) before elaboration — that hook
//! is how the regression farm sweeps one scenario across the whole
//! policy matrix.

use rtsim_comm::{EventPolicy, LockMode};
use rtsim_core::policies::PriorityPreemptive;
use rtsim_core::{EngineKind, Overheads, TaskConfig};
use rtsim_kernel::{SimDuration, SimTime};
use rtsim_mcse::script as s;
use rtsim_mcse::{FaultPlan, Mapping, Message, Regs, SystemModel, TimingConstraint};

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

/// Builds the paper's Figure 6 system.
///
/// One software processor (`Processor`, priority-based preemptive, all
/// three overheads 5 µs), three software functions with priorities 5/3/2,
/// and a hardware clock signalling `Clk` at 100 µs and 400 µs. The clock
/// annotates `clk_edge` at each edge, so reaction times can be measured.
///
/// Run to completion: the simulation ends at 780 µs.
pub fn figure6_system(engine: EngineKind) -> SystemModel {
    let mut model = SystemModel::new("figure6");
    model.event("Clk", EventPolicy::Fugitive);
    model.event("Event_1", EventPolicy::Fugitive);
    model.software_processor_with(
        "Processor",
        Box::new(PriorityPreemptive::new()),
        Overheads::uniform(us(5)),
        true,
        engine,
    );
    model.function_script(
        TaskConfig::new("Clock"),
        vec![
            s::delay(us(100)),
            s::note("clk_edge"),
            s::signal("Clk"),
            s::delay(us(300)),
            s::note("clk_edge"),
            s::signal("Clk"),
        ],
    );
    model.function_script(
        TaskConfig::new("Function_1").priority(5),
        vec![s::repeat(
            2,
            vec![
                s::await_event("Clk"),
                s::exec(us(20)),
                s::signal("Event_1"),
                s::exec(us(20)),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("Function_2").priority(3),
        vec![s::repeat(2, vec![s::await_event("Event_1"), s::exec(us(30))])],
    );
    model.function_script(TaskConfig::new("Function_3").priority(2), vec![s::exec(us(500))]);
    model.map("Clock", Mapping::Hardware);
    for f in ["Function_1", "Function_2", "Function_3"] {
        model.map_to_processor(f, "Processor");
    }
    model
}

/// Builds the paper's Figure 7 mutual-exclusion scenario with the given
/// shared-variable protection mode.
///
/// `Function_3` (priority 2) performs a long 100 µs read of
/// `SharedVar_1`; a clock wakes `Function_1` (priority 5) at 50 µs,
/// preempting the read; `Function_2` (priority 3) then wants the variable
/// at 60 µs. With [`LockMode::Plain`] the priority inversion of the
/// paper's Figure 7 appears; [`LockMode::PreemptionMasked`] is the fix the
/// paper proposes; [`LockMode::PriorityInheritance`] is the classic
/// protocol, added as an extension.
pub fn figure7_system(engine: EngineKind, mode: LockMode) -> SystemModel {
    let mut model = SystemModel::new("figure7");
    model.event("Clk", EventPolicy::Fugitive);
    model.shared_var("SharedVar_1", Message::new(0, 4), mode);
    model.software_processor_with(
        "Processor",
        Box::new(PriorityPreemptive::new()),
        Overheads::zero(),
        true,
        engine,
    );
    model.function_script(
        TaskConfig::new("Clock"),
        vec![s::delay(us(50)), s::signal("Clk")],
    );
    model.function_script(
        TaskConfig::new("Function_1").priority(5),
        vec![s::await_event("Clk"), s::exec(us(30))],
    );
    model.function_script(
        TaskConfig::new("Function_2").priority(3),
        vec![
            s::delay(us(60)),
            s::note("f2_wants_var"),
            s::var_read("SharedVar_1", us(10)),
            s::note("f2_got_var"),
            s::exec(us(10)),
        ],
    );
    model.function_script(
        TaskConfig::new("Function_3").priority(2),
        vec![s::var_read("SharedVar_1", us(100)), s::exec(us(50))],
    );
    model.map("Clock", Mapping::Hardware);
    for f in ["Function_1", "Function_2", "Function_3"] {
        model.map_to_processor(f, "Processor");
    }
    model
}

/// Builds a scheduling-heavy synthetic workload for the §4 simulation-
/// speed comparison: `tasks` ladder-priority tasks on one processor, each
/// alternating short `execute` and `delay` phases for `rounds` rounds —
/// every phase boundary is a scheduling action, so the workload maximizes
/// the coroutine-switch difference between the two engines.
pub fn ab_stress_system(engine: EngineKind, tasks: usize, rounds: u64) -> SystemModel {
    let mut model = SystemModel::new("ab_stress");
    model.software_processor_with(
        "CPU",
        Box::new(PriorityPreemptive::new()),
        Overheads::uniform(SimDuration::from_ns(500)),
        true,
        engine,
    );
    for i in 0..tasks {
        let name = format!("t{i}");
        model.function_script(
            TaskConfig::new(&name).priority(i as u32 + 1),
            vec![s::repeat(
                rounds,
                vec![s::exec(us(1)), s::delay(us(1 + i as u64))],
            )],
        );
        model.map_to_processor(&name, "CPU");
    }
    model
}

/// Builds the quickstart system on the model layer: a background task, a
/// high-priority interrupt handler, and a periodic hardware timer raising
/// the interrupt, on one 5 µs-overhead RTOS processor.
///
/// The handler (priority 9) services 4 timer pulses of 20 µs each; the
/// background task (priority 1) owns the remaining 600 µs of compute and
/// is preempted by every pulse.
pub fn quickstart_system() -> SystemModel {
    let mut model = SystemModel::new("quickstart");
    model.event("Irq", EventPolicy::Counter);
    model.software_processor("CPU0", Overheads::uniform(us(5)));
    model.function_script(
        TaskConfig::new("timer"),
        vec![s::repeat(4, vec![s::delay(us(150)), s::signal("Irq")])],
    );
    model.function_script(
        TaskConfig::new("irq_handler").priority(9),
        vec![s::repeat(4, vec![s::await_event("Irq"), s::exec(us(20))])],
    );
    model.function_script(TaskConfig::new("background").priority(1), vec![s::exec(us(600))]);
    model.map("timer", Mapping::Hardware);
    model.map_to_processor("irq_handler", "CPU0");
    model.map_to_processor("background", "CPU0");
    model
}

/// Builds the `design_space` example's policy-comparison workload: four
/// periodic tasks with mixed urgency sharing one 5 µs-overhead CPU, rate-
/// monotonic-friendly priorities (shortest period highest), implicit
/// deadlines, 16 activations each.
///
/// The `task0-deadline` timing constraint pins the most urgent task's
/// period as its completion bound, so
/// [`verify_constraints`](rtsim_mcse::ElaboratedSystem::verify_constraints)
/// reports its worst response directly.
pub fn policy_sweep_system() -> SystemModel {
    let mut model = SystemModel::new("policy_sweep");
    model.software_processor("CPU", Overheads::uniform(us(5)));
    for (i, (period_us, cost_us)) in [(1_000u64, 200u64), (2_000, 500), (4_000, 900), (8_000, 1_500)]
        .iter()
        .enumerate()
    {
        let name = format!("task{i}");
        let cfg = TaskConfig::new(&name)
            .priority(4 - i as u32)
            .deadline(us(*period_us));
        model.periodic_function(cfg, us(*period_us), us(*cost_us), 16);
        model.map_to_processor(&name, "CPU");
    }
    model.constraint(TimingConstraint::CompletionWithin {
        name: "task0-deadline".into(),
        function: "task0".into(),
        bound: us(1_000),
    });
    model
}

/// Builds the `custom_policy` example's contended reference workload: an
/// urgent 400 µs-periodic task (priority 9, 300 µs deadline), two mid
/// 800 µs-periodic loads (priority 5), and a 2 ms background task that
/// starves under pure priority scheduling — on one 2 µs-overhead CPU.
///
/// How much the urgent task's response and the background task's start
/// latency move is the one-screen summary of what the scheduling decision
/// costs; sweep it with
/// [`override_schedulers`](SystemModel::override_schedulers).
pub fn contended_system() -> SystemModel {
    let mut model = SystemModel::new("contended");
    model.software_processor("CPU", Overheads::uniform(us(2)));
    model.periodic_function(
        TaskConfig::new("urgent").priority(9).deadline(us(300)),
        us(400),
        us(100),
        20,
    );
    model.map_to_processor("urgent", "CPU");
    for i in 0..2u32 {
        let name = format!("mid{i}");
        model.periodic_function(
            TaskConfig::new(&name).priority(5).deadline(us(2_000)),
            us(800),
            us(250),
            10,
        );
        model.map_to_processor(&name, "CPU");
    }
    model.function_script(TaskConfig::new("bg").priority(1), vec![s::exec(us(2_000))]);
    model.map_to_processor("bg", "CPU");
    model
}

/// Configuration of the [`mpeg2_system`] case study.
#[derive(Debug, Clone)]
pub struct Mpeg2Config {
    /// Frames to push through the codec.
    pub frames: u64,
    /// RTOS implementation strategy for the three software processors.
    pub engine: EngineKind,
    /// RTOS overheads of the three software processors.
    pub overheads: Overheads,
    /// Frame period of the camera (and of the decoder's output clock).
    pub frame_period: SimDuration,
    /// Capacity of every inter-stage queue.
    pub queue_capacity: usize,
}

impl Default for Mpeg2Config {
    fn default() -> Self {
        Mpeg2Config {
            frames: 25,
            engine: EngineKind::ProcedureCall,
            overheads: Overheads::uniform(SimDuration::from_us(5)),
            frame_period: SimDuration::from_us(4_000),
            queue_capacity: 4,
        }
    }
}

/// Builds the paper's closing case study: "a video MPEG-2 compressing and
/// decompressing SoC ... composed of 18 tasks implemented on six
/// processors, three of them are software processors with a RTOS model."
///
/// The topology (the paper gives only the shape, so stage costs are
/// plausible synthetic values):
///
/// ```text
/// HW resources (fully concurrent; 5 functions on 3 conceptual HW
/// processors — camera/display I/O, the DCT accelerator, the IDCT
/// accelerator):
///   video_in ─► q_raw            dct_accel:  q_dct_in  ─► q_dct_out
///   net_loop: q_stream ─► q_rx   idct_accel: q_idct_in ─► q_idct_out
///   video_out: q_display ─► sink
///
/// CPU0 (encoder control, RTOS, 6 tasks): preprocess ► motion_est ►
///   dct_driver, quantize, rate_control (periodic), enc_ctrl (periodic)
/// CPU1 (bitstream, RTOS, 3 tasks): vlc, mux, audio_enc (periodic)
/// CPU2 (decoder, RTOS, 4 tasks): demux_vld, dequant, motion_comp, postproc
/// ```
///
/// 5 + 6 + 3 + 4 = 18 tasks on 6 processing resources, 3 of them software
/// processors with the RTOS model — the paper's stated topology.
///
/// `video_in` annotates `frame_in` per captured
/// frame and `video_out` annotates `frame_out` per displayed frame, so the
/// end-to-end latency distribution can be extracted from the trace.
pub fn mpeg2_system(config: &Mpeg2Config) -> SystemModel {
    let frames = config.frames;
    let period = config.frame_period;
    let cap = config.queue_capacity;
    let mut model = SystemModel::new("mpeg2_soc");

    for q in [
        "q_raw", "q_pre", "q_me", "q_dct_in", "q_dct_out", "q_quant", "q_vlc", "q_stream",
        "q_rx", "q_vld", "q_idct_in", "q_idct_out", "q_mc", "q_display",
    ] {
        model.queue(q, cap);
    }
    model.shared_var("bitrate", Message::new(0, 8), LockMode::PriorityInheritance);

    for cpu in ["CPU0", "CPU1", "CPU2"] {
        model.software_processor_with(
            cpu,
            Box::new(PriorityPreemptive::new()),
            config.overheads.clone(),
            true,
            config.engine,
        );
    }

    // A read/compute/forward pipeline stage, shared by most functions.
    let stage = |input: &str, cost: SimDuration, output: &str| {
        vec![s::repeat(
            frames,
            vec![
                s::q_read(input),
                s::exec(cost),
                s::q_write(output, |r: &Regs| r.msg),
            ],
        )]
    };

    // ---- hardware functions (6) ------------------------------------
    model.function_script(
        TaskConfig::new("video_in"),
        vec![s::repeat(
            frames,
            vec![
                s::delay(period),
                s::note("frame_in"),
                // 352x288 YUV420
                s::q_write("q_raw", |r: &Regs| Message::new(r.k, 152_064)),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("dct_accel"),
        stage("q_dct_in", us(400), "q_dct_out"),
    );
    model.function_script(
        TaskConfig::new("idct_accel"),
        stage("q_idct_in", us(400), "q_idct_out"),
    );
    // net_loop's cost models the transmission latency.
    model.function_script(
        TaskConfig::new("net_loop"),
        stage("q_stream", us(100), "q_rx"),
    );
    model.function_script(
        TaskConfig::new("video_out"),
        vec![s::repeat(
            frames,
            vec![s::q_read("q_display"), s::note("frame_out"), s::exec(us(50))],
        )],
    );
    // ---- CPU0: encoder front-end (6 software functions) -------------
    model.function_script(
        TaskConfig::new("preprocess").priority(6),
        stage("q_raw", us(300), "q_pre"),
    );
    model.function_script(
        TaskConfig::new("motion_est").priority(5),
        stage("q_pre", us(800), "q_me"),
    );
    model.function_script(
        TaskConfig::new("dct_driver").priority(5),
        stage("q_me", us(50), "q_dct_in"),
    );
    model.function_script(
        TaskConfig::new("quantize").priority(4),
        vec![s::repeat(
            frames,
            vec![
                s::q_read("q_dct_out"),
                s::var_read("bitrate", us(0)),
                s::exec_with(|r: &Regs| us(200) + us(1) * (r.var.size % 64)),
                s::q_write("q_quant", |r: &Regs| r.msg),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("rate_control")
            .priority(7)
            .period(period / 2),
        vec![s::repeat(
            frames * 2,
            vec![
                s::delay(period / 2),
                s::var_write("bitrate", us(20), |r: &Regs| {
                    Message::new(r.k, 8 + r.k % 32)
                }),
                s::exec(us(80)),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("enc_ctrl").priority(8).period(period),
        vec![s::repeat(frames, vec![s::delay(period), s::exec(us(50))])],
    );

    // ---- CPU1: bitstream back-end (3 software functions) ------------
    model.function_script(
        TaskConfig::new("vlc").priority(5),
        stage("q_quant", us(500), "q_vlc"),
    );
    model.function_script(
        TaskConfig::new("mux").priority(4),
        stage("q_vlc", us(100), "q_stream"),
    );
    model.function_script(
        TaskConfig::new("audio_enc").priority(3).period(period),
        vec![s::repeat(frames, vec![s::delay(period), s::exec(us(250))])],
    );

    // ---- CPU2: decoder (4 software functions) -----------------------
    model.function_script(
        TaskConfig::new("demux_vld").priority(6),
        stage("q_rx", us(350), "q_vld"),
    );
    model.function_script(
        TaskConfig::new("dequant").priority(5),
        stage("q_vld", us(250), "q_idct_in"),
    );
    model.function_script(
        TaskConfig::new("motion_comp").priority(4),
        stage("q_idct_out", us(300), "q_mc"),
    );
    model.function_script(
        TaskConfig::new("postproc").priority(3),
        stage("q_mc", us(350), "q_display"),
    );

    // ---- mapping -----------------------------------------------------
    for hw in ["video_in", "dct_accel", "idct_accel", "net_loop", "video_out"] {
        model.map(hw, Mapping::Hardware);
    }
    for f in [
        "preprocess",
        "motion_est",
        "dct_driver",
        "quantize",
        "rate_control",
        "enc_ctrl",
    ] {
        model.map_to_processor(f, "CPU0");
    }
    for f in ["vlc", "mux", "audio_enc"] {
        model.map_to_processor(f, "CPU1");
    }
    for f in ["demux_vld", "dequant", "motion_comp", "postproc"] {
        model.map_to_processor(f, "CPU2");
    }
    model
}


/// Configuration of the [`automotive_system`] case study (extension: a
/// second domain example beyond the paper's MPEG-2 SoC).
#[derive(Debug, Clone)]
pub struct AutomotiveConfig {
    /// Inter-arrival gaps of the crank-angle interrupt (jitter welcome:
    /// generate them from engine-speed profiles in the testbench).
    pub crank_gaps: Vec<SimDuration>,
    /// RTOS implementation strategy of both ECUs.
    pub engine: EngineKind,
    /// RTOS overheads of both ECUs.
    pub overheads: Overheads,
}

impl Default for AutomotiveConfig {
    fn default() -> Self {
        AutomotiveConfig {
            // 3000 rpm, 4 pulses/rev: one pulse every 5 ms.
            crank_gaps: vec![SimDuration::from_us(5_000); 20],
            engine: EngineKind::ProcedureCall,
            overheads: Overheads::uniform(SimDuration::from_us(5)),
        }
    }
}

/// Builds an automotive engine-control system: two ECUs over a CAN link.
///
/// ```text
/// crank sensor (HW, jittered schedule) ─► crank_isr (prio 10, ECU_engine)
///   crank_isr ─ crank_ev (counter) ─► injection (prio 9, deadline!)
///   injection & diagnostics share `inj_map` (priority inheritance)
///   knock_monitor (periodic) ─► q_telemetry ─► can_tx ─► q_can
///   CAN bus (HW, 200 us/frame) ─► q_dash ─► dash_update (ECU_dash)
/// ```
///
/// The interesting question — the reason one simulates before building —
/// is whether `injection` always reacts to a crank pulse within its
/// budget while `diagnostics` holds the shared injection map. The crank
/// annotates `crank` per pulse and `injection` annotates `injected` on
/// completion, so latencies fall out of the trace.
pub fn automotive_system(config: &AutomotiveConfig) -> SystemModel {
    let pulses = config.crank_gaps.len() as u64;
    let gaps = config.crank_gaps.clone();
    let total: SimDuration = gaps.iter().copied().sum();
    let knock_rounds = (total.as_us() / 2_000).max(1);
    let diag_rounds = (total.as_us() / 10_000).max(1);

    let mut model = SystemModel::new("automotive_ecu");
    // One counter event per consumer: a counter token is consumed by a
    // single waiter, and both the ISR and the injection task must see
    // every pulse.
    model.event("crank_ev_isr", EventPolicy::Counter);
    model.event("crank_ev_inj", EventPolicy::Counter);
    model.queue("q_telemetry", 8);
    model.queue("q_can", 4);
    model.queue("q_dash", 4);
    model.shared_var(
        "inj_map",
        Message::new(0, 64),
        LockMode::PriorityInheritance,
    );
    for ecu in ["ECU_engine", "ECU_dash"] {
        model.software_processor_with(
            ecu,
            Box::new(PriorityPreemptive::new()),
            config.overheads.clone(),
            true,
            config.engine,
        );
    }

    // -- hardware ------------------------------------------------------
    model.function_script(
        TaskConfig::new("crank_sensor"),
        vec![s::repeat(
            pulses,
            vec![
                s::delay_with(move |r: &Regs| gaps[r.k as usize]),
                s::note("crank"),
                s::signal("crank_ev_isr"),
                s::signal("crank_ev_inj"),
            ],
        )],
    );
    // Poll the CAN queue; park 500 us between polls and stop once the
    // bus has been quiet well past the last crank pulse.
    let quiet_after = SimTime::ZERO + total + us(20_000);
    model.function_script(
        TaskConfig::new("can_bus"),
        vec![s::forever(vec![
            s::q_try_read("q_can"),
            s::if_flag(
                // frame transmission
                vec![s::exec(us(200)), s::q_write("q_dash", |r: &Regs| r.msg)],
                vec![
                    s::delay(us(500)),
                    s::if_now_past(move |_| quiet_after, vec![s::ret()]),
                ],
            ),
        ])],
    );

    // -- ECU_engine ----------------------------------------------------
    model.function_script(
        TaskConfig::new("crank_isr").priority(10),
        vec![s::repeat(
            pulses,
            vec![
                s::await_event("crank_ev_isr"),
                s::exec(us(20)),
                s::note("isr_done"),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("injection")
            .priority(9)
            .deadline(us(500)),
        vec![s::repeat(
            pulses,
            vec![
                s::await_event("crank_ev_inj"),
                s::var_read("inj_map", us(30)),
                s::exec(us(120)),
                s::note("injected"),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("knock_monitor")
            .priority(5)
            .period(us(2_000)),
        vec![s::repeat(
            knock_rounds,
            vec![
                s::delay(us(2_000)),
                s::exec(us(100)),
                s::q_try_write("q_telemetry", |r: &Regs| Message::new(r.k, 16)),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("can_tx").priority(4),
        vec![s::repeat(
            knock_rounds,
            vec![
                s::q_read("q_telemetry"),
                s::exec(us(50)),
                s::q_write("q_can", |r: &Regs| r.msg),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("diagnostics")
            .priority(2)
            .period(us(10_000)),
        vec![s::repeat(
            diag_rounds,
            vec![
                s::delay(us(10_000)),
                // Long map recalibration under the PI lock: without
                // priority inheritance this would stall injection behind
                // knock_monitor's preemptions.
                s::var_write("inj_map", us(200), |r: &Regs| Message::new(r.k, 64)),
                s::exec(us(200)),
            ],
        )],
    );

    // -- ECU_dash ------------------------------------------------------
    model.function_script(
        TaskConfig::new("dash_update").priority(3),
        vec![s::repeat(
            knock_rounds,
            vec![s::q_read("q_dash"), s::exec(us(300))],
        )],
    );

    for hw in ["crank_sensor", "can_bus"] {
        model.map(hw, Mapping::Hardware);
    }
    for f in ["crank_isr", "injection", "knock_monitor", "can_tx", "diagnostics"] {
        model.map_to_processor(f, "ECU_engine");
    }
    model.map_to_processor("dash_update", "ECU_dash");

    model.constraint(rtsim_mcse::TimingConstraint::ReactionWithin {
        name: "crank-to-injection-start".into(),
        stimulus: "crank".into(),
        reactor: "injection".into(),
        bound: us(200),
    });
    model.constraint(rtsim_mcse::TimingConstraint::CompletionWithin {
        name: "injection-deadline".into(),
        function: "injection".into(),
        bound: us(500),
    });
    model
}

/// Builds the partitioned-SMP regression scenario: four periodic tasks
/// statically placed on `cores` cores by the first-fit utilization
/// packing of [`rtsim_core::partition_first_fit`], with rate-monotonic
/// priorities ([`rtsim_core::assign_rate_monotonic`]) and every task
/// pinned to its partition via [`TaskConfig::pin_to_core`] — the classic
/// partitioned-RM configuration. Total utilization is 1.4, so the set
/// needs at least two cores; with the default registry sweep the farm
/// runs it at `cores = 2` (partitions `{t0, t1}` and `{t2, t3}`).
///
/// Because the pinning lives in the task configs it survives
/// [`SystemModel::override_schedulers`]: under every policy of the
/// matrix each core still only ever elects from its own partition.
pub fn smp_partitioned_system(cores: u8) -> SystemModel {
    use rtsim_core::{assign_rate_monotonic, partition_first_fit, PeriodicTask, Priority};

    // t1's 900 µs jobs straddle t0's 1 ms releases, so core 0 is
    // contended and the cell's policy/mode choice shows in the schedule
    // (RM preempts t1 at each t0 release; FIFO lets it run out).
    let tasks = assign_rate_monotonic(vec![
        PeriodicTask::new("t0", us(300), us(1_000), Priority(0)),
        PeriodicTask::new("t1", us(900), us(2_000), Priority(0)),
        PeriodicTask::new("t2", us(700), us(2_000), Priority(0)),
        PeriodicTask::new("t3", us(1_200), us(4_000), Priority(0)),
    ]);
    let bins = partition_first_fit(&tasks, cores as usize)
        .unwrap_or_else(|| panic!("task set does not first-fit onto {cores} cores"));

    let mut model = SystemModel::new("smp_partitioned");
    model.software_processor_with(
        "CPU",
        Box::new(PriorityPreemptive::new()),
        Overheads::uniform(us(5)),
        true,
        EngineKind::ProcedureCall,
    );
    model.processor_cores("CPU", cores as usize);
    for (core, bin) in bins.iter().enumerate() {
        for &i in bin {
            let t = &tasks[i];
            let cfg = TaskConfig::new(&t.name)
                .priority(t.priority.0)
                .deadline(t.deadline)
                .pin_to_core(core);
            model.periodic_function(cfg, t.period, t.wcet, 8);
            model.map_to_processor(&t.name, "CPU");
        }
    }
    model
}

/// Builds the global-SMP regression scenario: five phase-shifted
/// compute/sleep tasks sharing one `cores`-core processor under a single
/// ready queue, with a non-zero migration overhead (12 µs on top of the
/// uniform 5 µs save/schedule/load) so core hops are visible in the
/// canonical trace as `O migration` segments. Four tasks float across
/// all cores; `pinned` is restricted to core 0, so affinity filtering is
/// exercised inside global election too.
pub fn smp_global_system(cores: u8) -> SystemModel {
    let mut model = SystemModel::new("smp_global");
    model.software_processor_with(
        "CPU",
        Box::new(PriorityPreemptive::new()),
        Overheads::uniform(us(5)).with_migration(us(12)),
        true,
        EngineKind::ProcedureCall,
    );
    model.processor_cores("CPU", cores as usize);
    for i in 0..4u64 {
        let name = format!("float{i}");
        let cfg = TaskConfig::new(&name)
            .priority(4 - i as u32)
            .deadline(us(2_000));
        model.function_script(
            cfg,
            vec![
                s::delay(us(50 * i)),
                s::repeat(6, vec![s::exec(us(150)), s::delay(us(100))]),
            ],
        );
        model.map_to_processor(&name, "CPU");
    }
    model.function_script(
        TaskConfig::new("pinned").priority(5).pin_to_core(0),
        vec![s::repeat(4, vec![s::exec(us(80)), s::delay(us(300))])],
    );
    model.map_to_processor("pinned", "CPU");
    model
}

// ---------------------------------------------------------------------
// Fault-injection scenarios. Each wraps one of the nominal systems above
// in a deterministic `FaultPlan` (seeded from the farm's campaign seed),
// so the golden matrix also pins behaviour *under* faults: message
// dropout, release jitter, transient overload, and degraded-mode entry.
// All plans replay bit-identically for any worker count and both kernel
// execution modes — the same invariant the nominal cells pin.
// ---------------------------------------------------------------------

/// Builds the message-dropout fault scenario: [`automotive_system`]
/// losing telemetry frames on `q_telemetry` with probability 0.3 (seeded
/// per-channel stream) and suffering a scripted CAN→dash blackout
/// (`q_dash`) between 20 ms and 50 ms. Downstream consumers simply see
/// fewer messages; the run still terminates on its own because every
/// blocked reader just ends idle.
pub fn fault_drop_automotive_system() -> SystemModel {
    let mut model = automotive_system(&AutomotiveConfig::default());
    model.fault_plan(
        FaultPlan::seeded(0, 0xD801)
            .drop_probability("q_telemetry", 0.3)
            .drop_window(
                "q_dash",
                SimTime::ZERO + us(20_000),
                SimTime::ZERO + us(50_000),
            ),
    );
    model
}

/// Builds the release-jitter fault scenario: [`policy_sweep_system`]
/// with bounded uniform jitter on its two most urgent periodic tasks
/// (task0 up to 150 µs late, task1 up to 300 µs). The offsets are a pure
/// function of the plan seed and the activation index, so they are
/// identical under every policy of the sweep — only the scheduling
/// response to them differs.
pub fn fault_jitter_sweep_system() -> SystemModel {
    let mut model = policy_sweep_system();
    model.fault_plan(
        FaultPlan::seeded(0, 0x71E2)
            .jitter("task0", us(150))
            .jitter("task1", us(300)),
    );
    model
}

/// Builds the transient-overload fault scenario: the 6-frame
/// [`mpeg2_system`] with two scripted burst windows — motion estimation
/// costs double between 4 ms and 12 ms, and VLC costs 3/2 between 8 ms
/// and 20 ms — modelling data-dependent load spikes in the encoder.
pub fn fault_burst_mpeg2_system() -> SystemModel {
    let mut model = mpeg2_system(&Mpeg2Config {
        frames: 6,
        ..Mpeg2Config::default()
    });
    model.fault_plan(
        FaultPlan::seeded(0, 0xB512)
            .burst(
                "motion_est",
                SimTime::ZERO + us(4_000),
                SimTime::ZERO + us(12_000),
                2,
                1,
            )
            .burst(
                "vlc",
                SimTime::ZERO + us(8_000),
                SimTime::ZERO + us(20_000),
                3,
                2,
            ),
    );
    model
}

/// Builds the degraded-mode fault scenario: a hardware sensor feeding a
/// periodic controller through `q_samples`, with a scripted sensor
/// blackout from 3 ms to 6 ms. The controller watches the channel
/// through its [`FaultPlan::degraded`] registration: after 2 consecutive
/// faulted activations it enters its fallback body (a cheap open-loop
/// step) under a relaxed 1.5 ms deadline, and recovers to the nominal
/// closed-loop body after 3 consecutive healthy activations.
pub fn fault_degraded_sensor_system() -> SystemModel {
    let mut model = SystemModel::new("degraded_sensor");
    model.queue("q_samples", 8);
    model.software_processor("CPU", Overheads::uniform(us(5)));
    model.function_script(
        TaskConfig::new("sensor"),
        vec![s::repeat(
            24,
            vec![
                s::delay(us(500)),
                s::q_write("q_samples", |r: &Regs| Message::new(r.k, 16)),
            ],
        )],
    );
    model.function_script(
        TaskConfig::new("controller").priority(5).deadline(us(400)),
        vec![s::repeat(
            24,
            vec![
                s::degraded_gate(
                    // Nominal: consume the freshest sample if one
                    // arrived, full closed-loop update either way.
                    vec![
                        s::q_try_read("q_samples"),
                        s::if_flag(vec![s::exec(us(200))], vec![s::exec(us(120))]),
                    ],
                    // Degraded: cheap open-loop step.
                    vec![s::exec(us(60))],
                ),
                s::periodic_release(us(500)),
            ],
        )],
    );
    // A chunky low-priority logger so the cell's policy choice is
    // visible: priority policies preempt (or at least outrank) it at
    // every controller release, arrival-order policies make the
    // controller wait a 300 µs chunk out.
    model.function_script(
        TaskConfig::new("logger").priority(2),
        vec![s::repeat(12, vec![s::exec(us(300)), s::delay(us(350))])],
    );
    model.map("sensor", Mapping::Hardware);
    model.map_to_processor("controller", "CPU");
    model.map_to_processor("logger", "CPU");
    model.fault_plan(
        FaultPlan::seeded(0, 0xDE64)
            .drop_window(
                "q_samples",
                SimTime::ZERO + us(3_000),
                SimTime::ZERO + us(6_000),
            )
            .degraded("controller", &["q_samples"], 2, 3, us(1_500)),
    );
    model
}

/// Per-pulse crank-to-injection-complete latencies from an automotive
/// run's trace.
pub fn injection_latencies(trace: &rtsim_trace::Trace) -> Vec<SimDuration> {
    let cranks = trace.annotation_times("crank");
    let injected = trace.annotation_times("injected");
    cranks
        .iter()
        .zip(injected.iter())
        .map(|(&c, &i)| i - c)
        .collect()
}

/// Extracts the per-frame end-to-end (capture → display) latencies from
/// an MPEG-2 run's trace, pairing `frame_in`/`frame_out` annotations in
/// order (the pipeline is FIFO throughout).
pub fn mpeg2_latencies(trace: &rtsim_trace::Trace) -> Vec<SimDuration> {
    let ins = trace.annotation_times("frame_in");
    let outs = trace.annotation_times("frame_out");
    ins.iter()
        .zip(outs.iter())
        .map(|(&i, &o)| o - i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsim_kernel::SimTime;

    #[test]
    fn figure6_runs_to_780us() {
        let mut system = figure6_system(EngineKind::ProcedureCall).elaborate().unwrap();
        system.run().unwrap();
        assert_eq!(system.now(), SimTime::ZERO + us(780));
    }

    #[test]
    fn figure7_variants_run() {
        for mode in [
            LockMode::Plain,
            LockMode::PreemptionMasked,
            LockMode::PriorityInheritance,
        ] {
            let mut system = figure7_system(EngineKind::ProcedureCall, mode)
                .elaborate()
                .unwrap();
            system.run().unwrap();
            assert!(system.now() > SimTime::ZERO);
        }
    }

    #[test]
    fn mpeg2_delivers_every_frame() {
        let config = Mpeg2Config {
            frames: 10,
            ..Mpeg2Config::default()
        };
        let mut system = mpeg2_system(&config).elaborate().unwrap();
        system.run().unwrap();
        let latencies = mpeg2_latencies(&system.trace());
        assert_eq!(latencies.len(), 10);
        // Pipeline is deep: latency well above the sum of one frame's
        // compute, but bounded (no unbounded backlog).
        for l in &latencies {
            assert!(*l > us(2_000), "{l}");
            assert!(*l < us(40_000), "{l}");
        }
    }

    #[test]
    fn automotive_injects_on_every_pulse_within_deadline() {
        let config = AutomotiveConfig::default();
        let pulses = config.crank_gaps.len();
        let mut system = automotive_system(&config).elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();
        let latencies = injection_latencies(&trace);
        assert_eq!(latencies.len(), pulses);
        for l in &latencies {
            assert!(*l <= us(500), "injection latency {l} blew the budget");
        }
        let report = system.verify_constraints();
        assert!(report.all_satisfied(), "{report}");
    }

    #[test]
    fn automotive_handles_jittered_crank() {
        // Accelerating engine: gaps shrink from 7 ms to 2 ms.
        let gaps = (0..25u64).map(|k| us(7_000 - k * 200)).collect();
        let config = AutomotiveConfig {
            crank_gaps: gaps,
            ..AutomotiveConfig::default()
        };
        let mut system = automotive_system(&config).elaborate().unwrap();
        system.run().unwrap();
        let latencies = injection_latencies(&system.trace());
        assert_eq!(latencies.len(), 25);
        let summary =
            rtsim_trace::DurationSummary::from_durations(latencies).expect("latencies");
        assert!(summary.max <= us(500), "{summary}");
    }

    #[test]
    fn mpeg2_results_do_not_depend_on_the_engine() {
        fn latencies(engine: EngineKind) -> Vec<SimDuration> {
            let config = Mpeg2Config {
                frames: 8,
                engine,
                ..Mpeg2Config::default()
            };
            let mut system = mpeg2_system(&config).elaborate().unwrap();
            system.run().unwrap();
            mpeg2_latencies(&system.trace())
        }
        assert_eq!(
            latencies(EngineKind::ProcedureCall),
            latencies(EngineKind::DedicatedThread)
        );
    }

    #[test]
    fn ab_stress_engines_agree_within_overhead_jitter() {
        // When activations collide with RTOS overhead windows the two
        // implementation strategies elect at slightly different instants
        // (approach B's awakened task runs the scheduler at the wake
        // instant, Figure 5; approach A's RTOS thread elects after the
        // scheduling delay). Completion times must still agree to within
        // a few overhead windows.
        fn end(engine: EngineKind) -> SimTime {
            let mut system = ab_stress_system(engine, 4, 10).elaborate().unwrap();
            system.run().unwrap();
            system.now()
        }
        let b = end(EngineKind::ProcedureCall).as_ps() as f64;
        let a = end(EngineKind::DedicatedThread).as_ps() as f64;
        assert!((a - b).abs() / b < 0.05, "a={a} b={b}");
    }

    #[test]
    fn quickstart_background_finishes_after_all_interrupts() {
        let mut system = quickstart_system().elaborate().unwrap();
        system.run().unwrap();
        // 600 us of background + 4x20 us of handler + overheads: the run
        // must end after the last timer pulse at 600 us.
        assert!(system.now() > SimTime::ZERO + us(600));
        let stats = system.processor_stats("CPU0").unwrap();
        assert!(stats.preemptions >= 1, "{stats:?}");
    }

    #[test]
    fn policy_sweep_meets_task0_deadline_under_default_rtos() {
        let mut system = policy_sweep_system().elaborate().unwrap();
        system.run().unwrap();
        let report = system.verify_constraints();
        assert!(report.all_satisfied(), "{report}");
    }

    #[test]
    fn smp_partitioned_keeps_tasks_on_their_cores() {
        let mut system = smp_partitioned_system(2).elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();
        // First-fit places {t0, t1} on core 0 and {t2, t3} on core 1;
        // pinning must hold for every dispatch of the run.
        for (name, core) in [("t0", 0), ("t1", 0), ("t2", 1), ("t3", 1)] {
            let actor = trace.actor_by_name(name).unwrap();
            let cores: Vec<usize> = trace
                .records_for(actor)
                .filter_map(|r| match r.data {
                    rtsim_trace::TraceData::Core(c) => Some(c),
                    _ => None,
                })
                .collect();
            assert!(!cores.is_empty(), "{name} never dispatched");
            assert!(
                cores.iter().all(|&c| c == core),
                "{name} escaped core {core}: {cores:?}"
            );
        }
        // A partitioned system never migrates: no migration overhead
        // may be charged anywhere in the trace.
        assert!(!trace.records().iter().any(|r| matches!(
            r.data,
            rtsim_trace::TraceData::Overhead {
                kind: rtsim_trace::OverheadKind::Migration,
                ..
            }
        )));
    }

    #[test]
    fn smp_global_migrates_and_charges_for_it() {
        let mut system = smp_global_system(2).elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();
        let migrations = trace
            .records()
            .iter()
            .filter(|r| {
                matches!(
                    r.data,
                    rtsim_trace::TraceData::Overhead {
                        kind: rtsim_trace::OverheadKind::Migration,
                        ..
                    }
                )
            })
            .count();
        assert!(migrations > 0, "global scheduling never migrated a task");
        // The pinned task must honour its affinity even under global
        // dispatch.
        let pinned = trace.actor_by_name("pinned").unwrap();
        assert!(trace.records_for(pinned).all(|r| match r.data {
            rtsim_trace::TraceData::Core(c) => c == 0,
            _ => true,
        }));
    }

    #[test]
    fn contended_runs_all_jobs() {
        let mut system = contended_system().elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();
        let m = rtsim_trace::Measure::new(&trace);
        let urgent = trace.actor_by_name("urgent").unwrap();
        assert_eq!(m.response_times(urgent).len(), 20);
    }
}
