//! Cross-mode differential suite: the run-to-completion (segment)
//! kernel must be observationally identical to the thread-backed one.
//!
//! Every cell of the farm matrix — every scenario × every policy × both
//! preemption modes — is run under [`ExecMode::Thread`] and
//! [`ExecMode::Segment`] and must reduce to bit-identical fingerprints.
//! The fingerprint hashes the full canonical trace, per-task response
//! summaries and per-processor scheduler counters, so any divergence —
//! one record reordered, one preemption moved by a picosecond — fails
//! the sweep.
//!
//! On top of the fingerprint sweep, one cell per scenario is re-run with
//! direct access to the elaborated system to pin the canonical trace
//! text and the kernel's own counters (process switches, delta cycles,
//! timed advances, event wakes) as equal too.

use rtsim_core::{EngineKind, Overheads, TaskConfig};
use rtsim_farm::registry::{full_matrix, scenario_by_name};
use rtsim_farm::{run_cell_with_mode, Cell, PolicyKind, SCENARIOS};
use rtsim_kernel::{ExecMode, SimDuration, SimTime};
use rtsim_mcse::script as s;
use rtsim_mcse::{Mapping, Message, SystemModel};
use rtsim_trace::canonical;

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

#[test]
fn every_farm_cell_fingerprints_identically_in_both_modes() {
    let mut checked = 0usize;
    for cell in full_matrix() {
        let thread = run_cell_with_mode(cell, ExecMode::Thread);
        let segment = run_cell_with_mode(cell, ExecMode::Segment);
        assert_eq!(
            thread.fingerprint,
            segment.fingerprint,
            "exec modes diverged on {}",
            cell.label()
        );
        checked += 1;
    }
    let combos: usize = SCENARIOS.iter().map(|s| s.core_counts.len()).sum();
    assert_eq!(checked, combos * PolicyKind::ALL.len() * 2);
}

#[test]
fn traces_and_kernel_counters_match_per_scenario() {
    for scenario in SCENARIOS {
        let run = |mode: ExecMode| {
            let mut model = (scenario.build)(scenario.core_counts[0]);
            model.exec_mode(mode);
            let mut system = model.elaborate().expect("scenario elaborates");
            system
                .run_until(SimTime::ZERO + scenario.horizon)
                .expect("scenario runs");
            (canonical(&system.trace()), system.kernel_stats())
        };
        let (thread_trace, thread_stats) = run(ExecMode::Thread);
        let (segment_trace, segment_stats) = run(ExecMode::Segment);
        assert_eq!(
            thread_trace, segment_trace,
            "canonical trace diverged on {}",
            scenario.name
        );
        assert_eq!(
            thread_stats, segment_stats,
            "kernel counters diverged on {}",
            scenario.name
        );
    }
}

/// A cell built to contend both queue ends with several blocked tasks
/// at once: three writers race a capacity-1 queue drained slowly from
/// hardware, and three readers starve on a second capacity-1 queue fed
/// slowly from hardware — so multi-waiter FIFO wake order is exercised
/// on the full and the empty side.
fn contended_queue_model(overheads: Overheads, cores: usize) -> SystemModel {
    let mut model = SystemModel::new("contended_queue_cell");
    model.queue("Q", 1);
    model.queue("R", 1);
    model.software_processor("CPU", overheads);
    if cores > 1 {
        model.processor_cores("CPU", cores);
    }
    for (name, prio, id) in [("W_A", 5, 1u64), ("W_B", 4, 2), ("W_C", 3, 3)] {
        model.function_script(
            TaskConfig::new(name)
                .priority(prio)
                .period(us(500))
                .deadline(us(400)),
            vec![s::repeat(
                3,
                vec![s::exec(us(2)), s::q_write("Q", move |_| Message::new(id, 4))],
            )],
        );
        model.map_to_processor(name, "CPU");
    }
    model.function_script(
        TaskConfig::new("Drain"),
        vec![s::repeat(9, vec![s::delay(us(20)), s::q_read("Q")])],
    );
    model.map("Drain", Mapping::Hardware);
    for (name, prio) in [("R_A", 5), ("R_B", 4), ("R_C", 3)] {
        model.function_script(
            TaskConfig::new(name)
                .priority(prio)
                .period(us(600))
                .deadline(us(300)),
            vec![s::repeat(2, vec![s::q_read("R"), s::exec(us(3))])],
        );
        model.map_to_processor(name, "CPU");
    }
    model.function_script(
        TaskConfig::new("Feed"),
        vec![s::repeat(
            6,
            vec![s::delay(us(15)), s::q_write("R", |_| Message::new(9, 4))],
        )],
    );
    model.map("Feed", Mapping::Hardware);
    model
}

/// The multi-waiter contended-queue cell: every policy × both
/// preemption modes × {1,2} cores × {zero, paper-uniform} overheads
/// must produce byte-identical canonical traces in both exec modes.
#[test]
fn multi_waiter_contended_queue_identical_across_modes() {
    let overhead_sets = [Overheads::zero(), Overheads::uniform(us(5))];
    for oh in &overhead_sets {
        for cores in [1usize, 2] {
            for policy in PolicyKind::ALL {
                for preemptive in [true, false] {
                    let run = |mode: ExecMode| {
                        let mut model = contended_queue_model(oh.clone(), cores);
                        model.override_schedulers(preemptive, |_| policy.make());
                        model.exec_mode(mode);
                        let mut system = model.elaborate().expect("elaborates");
                        system
                            .run_until(SimTime::ZERO + SimDuration::from_ms(2))
                            .expect("runs");
                        canonical(&system.trace())
                    };
                    assert_eq!(
                        run(ExecMode::Thread),
                        run(ExecMode::Segment),
                        "contended queue diverged: cores={cores} policy={} preemptive={preemptive}",
                        policy.key()
                    );
                }
            }
        }
    }
}

/// FIFO grant order survives barging: W1 blocks on the full queue at
/// t=1, W2 at t=3; the t=10 read wakes W1, but the higher-priority Hog
/// (which never blocked) steals the freed slot at t=12, so W1's retry
/// fails and it must re-queue — at its original seniority, ahead of W2.
/// The t=20 read must therefore grant W1, and the t=30 read W2, in both
/// exec modes.
#[test]
fn contended_queue_grants_fifo_despite_barging() {
    for mode in [ExecMode::Thread, ExecMode::Segment] {
        let mut model = SystemModel::new("barging_queue");
        model.queue("Q", 1);
        model.software_processor("CPU", Overheads::zero());
        model.function_script(
            TaskConfig::new("W1").priority(5),
            vec![
                s::exec(us(1)),
                s::q_write("Q", |_| Message::new(11, 4)),
                s::q_write("Q", |_| Message::new(12, 4)),
            ],
        );
        model.map_to_processor("W1", "CPU");
        model.function_script(
            TaskConfig::new("W2").priority(4),
            vec![s::exec(us(2)), s::q_write("Q", |_| Message::new(21, 4))],
        );
        model.map_to_processor("W2", "CPU");
        model.function_script(
            TaskConfig::new("Hog").priority(9),
            vec![
                s::delay(us(8)),
                s::exec(us(4)),
                s::q_write("Q", |_| Message::new(99, 4)),
            ],
        );
        model.map_to_processor("Hog", "CPU");
        model.function_script(
            TaskConfig::new("Drain"),
            vec![s::repeat(4, vec![s::delay(us(10)), s::q_read("Q")])],
        );
        model.map("Drain", Mapping::Hardware);
        model.exec_mode(mode);
        let mut system = model.elaborate().expect("elaborates");
        system
            .run_until(SimTime::ZERO + SimDuration::from_ms(1))
            .expect("runs");
        let text = canonical(&system.trace());
        // Resolve each writer's trace actor from the canonical header,
        // then collect its queue-write instants from the comm records.
        let actor_of = |name: &str| -> String {
            text.lines()
                .find_map(|l| {
                    l.strip_prefix("actor ")
                        .and_then(|rest| rest.strip_suffix(&format!(" task {name}")))
                })
                .unwrap_or_else(|| panic!("no actor line for {name}"))
                .to_string()
        };
        let writes_of = |actor: &str| -> Vec<u64> {
            text.lines()
                .filter(|l| l.ends_with("write"))
                .filter_map(|l| {
                    let mut parts = l.split_whitespace();
                    let ts: u64 = parts.next()?.parse().ok()?;
                    let _seq = parts.next()?;
                    (parts.next()? == actor).then_some(ts)
                })
                .collect()
        };
        // Without seniority tickets W1's barged retry re-queued behind
        // W2 and only wrote at t=30 µs; with them it keeps its place.
        let w1 = actor_of("W1");
        let w2 = actor_of("W2");
        assert_eq!(
            writes_of(&w1),
            vec![1_000_000, 20_000_000],
            "W1's writes moved in {mode:?}"
        );
        assert_eq!(
            writes_of(&w2),
            vec![30_000_000],
            "W2 granted out of FIFO order in {mode:?}"
        );
    }
}

#[test]
fn segment_mode_reproduces_pinned_figure6_facts() {
    let cell = Cell {
        scenario: "paper_fig6",
        policy: PolicyKind::Priority,
        preemptive: true,
        cores: 1,
    };
    let result = run_cell_with_mode(cell, ExecMode::Segment);
    assert_eq!(result.fingerprint.makespan_ps, 775_000_000);
    assert_eq!(result.fingerprint.preemptions, 2);
}

#[test]
fn segment_mode_agrees_for_the_thread_engine_strategy_too() {
    // The farm sweeps EngineKind::ProcedureCall (approach B); the
    // approach-A RTOS model (DedicatedThread) also drives both kernel
    // modes and must agree with itself across them.
    let scenario = scenario_by_name("paper_fig6").expect("registered");
    let run = |mode: ExecMode| {
        let mut model = rtsim_farm::scenarios::figure6_system(EngineKind::DedicatedThread);
        model.exec_mode(mode);
        let mut system = model.elaborate().expect("elaborates");
        system
            .run_until(SimTime::ZERO + scenario.horizon)
            .expect("runs");
        canonical(&system.trace())
    };
    assert_eq!(run(ExecMode::Thread), run(ExecMode::Segment));
}
