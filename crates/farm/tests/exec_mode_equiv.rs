//! Cross-mode differential suite: the run-to-completion (segment)
//! kernel must be observationally identical to the thread-backed one.
//!
//! Every cell of the farm matrix — every scenario × every policy × both
//! preemption modes — is run under [`ExecMode::Thread`] and
//! [`ExecMode::Segment`] and must reduce to bit-identical fingerprints.
//! The fingerprint hashes the full canonical trace, per-task response
//! summaries and per-processor scheduler counters, so any divergence —
//! one record reordered, one preemption moved by a picosecond — fails
//! the sweep.
//!
//! On top of the fingerprint sweep, one cell per scenario is re-run with
//! direct access to the elaborated system to pin the canonical trace
//! text and the kernel's own counters (process switches, delta cycles,
//! timed advances, event wakes) as equal too.

use rtsim_core::EngineKind;
use rtsim_farm::registry::{full_matrix, scenario_by_name};
use rtsim_farm::{run_cell_with_mode, Cell, PolicyKind, SCENARIOS};
use rtsim_kernel::{ExecMode, SimTime};
use rtsim_trace::canonical;

#[test]
fn every_farm_cell_fingerprints_identically_in_both_modes() {
    let mut checked = 0usize;
    for cell in full_matrix() {
        let thread = run_cell_with_mode(cell, ExecMode::Thread);
        let segment = run_cell_with_mode(cell, ExecMode::Segment);
        assert_eq!(
            thread.fingerprint,
            segment.fingerprint,
            "exec modes diverged on {}",
            cell.label()
        );
        checked += 1;
    }
    let combos: usize = SCENARIOS.iter().map(|s| s.core_counts.len()).sum();
    assert_eq!(checked, combos * PolicyKind::ALL.len() * 2);
}

#[test]
fn traces_and_kernel_counters_match_per_scenario() {
    for scenario in SCENARIOS {
        let run = |mode: ExecMode| {
            let mut model = (scenario.build)(scenario.core_counts[0]);
            model.exec_mode(mode);
            let mut system = model.elaborate().expect("scenario elaborates");
            system
                .run_until(SimTime::ZERO + scenario.horizon)
                .expect("scenario runs");
            (canonical(&system.trace()), system.kernel_stats())
        };
        let (thread_trace, thread_stats) = run(ExecMode::Thread);
        let (segment_trace, segment_stats) = run(ExecMode::Segment);
        assert_eq!(
            thread_trace, segment_trace,
            "canonical trace diverged on {}",
            scenario.name
        );
        assert_eq!(
            thread_stats, segment_stats,
            "kernel counters diverged on {}",
            scenario.name
        );
    }
}

#[test]
fn segment_mode_reproduces_pinned_figure6_facts() {
    let cell = Cell {
        scenario: "paper_fig6",
        policy: PolicyKind::Priority,
        preemptive: true,
        cores: 1,
    };
    let result = run_cell_with_mode(cell, ExecMode::Segment);
    assert_eq!(result.fingerprint.makespan_ps, 775_000_000);
    assert_eq!(result.fingerprint.preemptions, 2);
}

#[test]
fn segment_mode_agrees_for_the_thread_engine_strategy_too() {
    // The farm sweeps EngineKind::ProcedureCall (approach B); the
    // approach-A RTOS model (DedicatedThread) also drives both kernel
    // modes and must agree with itself across them.
    let scenario = scenario_by_name("paper_fig6").expect("registered");
    let run = |mode: ExecMode| {
        let mut model = rtsim_farm::scenarios::figure6_system(EngineKind::DedicatedThread);
        model.exec_mode(mode);
        let mut system = model.elaborate().expect("elaborates");
        system
            .run_until(SimTime::ZERO + scenario.horizon)
            .expect("runs");
        canonical(&system.trace())
    };
    assert_eq!(run(ExecMode::Thread), run(ExecMode::Segment));
}
