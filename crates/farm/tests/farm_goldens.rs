//! The farm's own acceptance criteria, as library-level tests:
//! worker-count invariance, agreement with the committed goldens, and
//! drift detection that names the perturbed cell.

use rtsim_farm::registry::{run_matrix, smoke_matrix, PolicyKind};
use rtsim_farm::{diff, goldens_path, render};

#[test]
fn fingerprints_are_identical_across_worker_counts() {
    let cells = smoke_matrix();
    let one = run_matrix(&cells, 1);
    let four = run_matrix(&cells, 4);
    let eight = run_matrix(&cells, 8);
    assert_eq!(one, four);
    assert_eq!(one, eight);
    // Byte-level too: the golden rendering must not depend on workers.
    assert_eq!(render(&one), render(&eight));
}

#[test]
fn smoke_subset_matches_the_committed_goldens() {
    let goldens = std::fs::read_to_string(goldens_path()).expect(
        "tests/goldens/farm.jsonl missing — run `cargo run --bin rtsim-farm -- --bless`",
    );
    let results = run_matrix(&smoke_matrix(), 2);
    let outcome = diff(&goldens, &results, false);
    assert!(
        outcome.is_clean(),
        "behaviour drifted from goldens:\n{}",
        outcome.messages.join("\n")
    );
    assert_eq!(outcome.matched, results.len());
}

#[test]
fn committed_goldens_cover_the_full_matrix() {
    let goldens = std::fs::read_to_string(goldens_path()).expect("goldens");
    let keys: Vec<_> = goldens
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| rtsim_farm::parse_cell_key(l).expect("well-formed golden line"))
        .collect();
    let expected = rtsim_farm::registry::full_matrix();
    assert_eq!(keys.len(), expected.len());
    for cell in expected {
        let key = (
            cell.scenario.to_owned(),
            cell.policy.key().to_owned(),
            cell.mode().to_owned(),
            cell.cores,
        );
        assert!(keys.contains(&key), "goldens lack {}", cell.label());
    }
}

#[test]
fn perturbed_golden_is_caught_and_named() {
    // Simulate a dispatch-order regression in one cell by corrupting its
    // golden hash: --check-style diffing must fail and name exactly that
    // (scenario, policy, mode) cell.
    let results = run_matrix(&smoke_matrix(), 2);
    let clean = render(&results);
    let victim = "\"scenario\":\"paper_fig6\",\"policy\":\"edf\",\"mode\":\"cooperative\"";
    let tampered: String = clean
        .lines()
        .map(|line| {
            if line.contains(victim) {
                let marker = "\"hash\":\"";
                let start = line.find(marker).unwrap() + marker.len();
                // Overwrite the 16 hex digits with a hash no run produces.
                format!("{}{}{}", &line[..start], "f".repeat(16), &line[start + 16..])
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let outcome = diff(&tampered, &results, false);
    assert!(!outcome.is_clean());
    assert_eq!(outcome.messages.len(), 1, "{:?}", outcome.messages);
    assert!(
        outcome.messages[0].contains("paper_fig6/edf/cooperative"),
        "diff does not name the drifted cell: {}",
        outcome.messages[0]
    );
    assert!(outcome.messages[0].contains("hash"), "{}", outcome.messages[0]);
}

#[test]
fn policy_choice_is_visible_in_every_scenario_fingerprint() {
    // Sensitivity: for each scenario, fifo and priority fingerprints must
    // differ in preemptive mode — if they ever collide, the fingerprint
    // stopped seeing scheduling behaviour.
    for scenario in rtsim_farm::SCENARIOS {
        // quickstart under fifo/priority genuinely differs because the
        // high-priority handler competes with the background task.
        let make = |policy| rtsim_farm::Cell {
            scenario: scenario.name,
            policy,
            preemptive: true,
            cores: scenario.core_counts[0],
        };
        let results = run_matrix(&[make(PolicyKind::Fifo), make(PolicyKind::Priority)], 2);
        assert_ne!(
            results[0].fingerprint.hash, results[1].fingerprint.hash,
            "{}: fifo and priority produced the same fingerprint",
            scenario.name
        );
    }
}
