//! End-to-end smoke of the `rtsim-grid` binary and the farm-on-grid
//! acceptance criteria: shard-count invariance of the emitted artifacts,
//! the `--check-cache` round-trip, and a warm `rtsim-farm --check` that
//! is served from the cache yet still matches the committed goldens.

use std::path::PathBuf;
use std::process::Command;

fn grid() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rtsim-grid"));
    // Smoke mode everywhere: test suites must stay fast.
    cmd.env("RTSIM_BENCH_SMOKE", "1");
    cmd.env_remove("RTSIM_GRID_CACHE");
    cmd.env_remove("RTSIM_GRID_SHARDS");
    cmd
}

fn farm() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rtsim-farm"));
    cmd.env("RTSIM_BENCH_SMOKE", "1");
    cmd.env_remove("RTSIM_GRID_CACHE");
    cmd.env_remove("RTSIM_GRID_SHARDS");
    cmd
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtsim_grid_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Acceptance: merged artifacts are bit-identical across shard counts
/// {1, 2, 4} and worker counts {1, 4, 8}.
#[test]
fn merged_artifacts_are_shard_and_worker_invariant() {
    let merged = |shards: &str, workers: &str, tag: &str| {
        let dir = scratch_dir(tag);
        let output = grid()
            .args(["--shards", shards, "--merge"])
            .env("RTSIM_WORKERS", workers)
            .env("RTSIM_CAMPAIGN_OUT", &dir)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "shards={shards} workers={workers}:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let jsonl = std::fs::read_to_string(dir.join("grid.jsonl")).unwrap();
        let csv = std::fs::read_to_string(dir.join("grid.csv")).unwrap();
        // The per-shard slices must concatenate to the merged file.
        let mut parts = String::new();
        for shard in 0.. {
            match std::fs::read_to_string(dir.join(format!("grid.shard{shard}.jsonl"))) {
                Ok(part) => parts.push_str(&part),
                Err(_) => break,
            }
        }
        assert_eq!(parts, jsonl, "shards={shards}: slices != merged");
        let _ = std::fs::remove_dir_all(&dir);
        (jsonl, csv)
    };
    let base = merged("1", "1", "m11");
    for (shards, workers, tag) in [("2", "4", "m24"), ("4", "8", "m48"), ("1", "8", "m18")] {
        assert_eq!(
            merged(shards, workers, tag),
            base,
            "shards={shards} workers={workers} diverged"
        );
    }
}

#[test]
fn check_cache_round_trip_passes() {
    let dir = scratch_dir("roundtrip");
    let output = grid()
        .arg("--check-cache")
        .env("RTSIM_GRID_CACHE", &dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "--check-cache failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("byte-identical"), "{stdout}");
    // The cache holds one entry per smoke cell afterwards.
    let entries = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(entries, 22, "one cache entry per smoke cell");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: a warm farm --check rerun through the grid cache is
/// >= 90 % hits while the committed goldens still pass unchanged.
#[test]
fn warm_farm_check_is_cache_served_and_still_green() {
    let dir = scratch_dir("warmcheck");
    let check = |shards: &str| {
        let output = farm()
            .arg("--check")
            .env("RTSIM_GRID_CACHE", &dir)
            .env("RTSIM_GRID_SHARDS", shards)
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "--check (shards={shards}) failed:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let cold = check("2");
    assert!(cold.contains("cache: 0 hit(s), 22 miss(es)"), "{cold}");
    let warm = check("4");
    assert!(
        warm.contains("cache: 22 hit(s), 0 miss(es)"),
        "warm rerun not fully cache-served:\n{warm}"
    );
    assert!(warm.contains("22 cells match"), "{warm}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conflicting_and_malformed_flags_are_rejected() {
    assert!(!grid().args(["--merge", "--check-cache"]).output().unwrap().status.success());
    assert!(!grid().args(["--shards", "zero"]).output().unwrap().status.success());
    assert!(!grid().arg("--frobnicate").output().unwrap().status.success());
}
