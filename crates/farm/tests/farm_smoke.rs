//! End-to-end smoke of the `rtsim-farm` binary: `--check` against the
//! committed goldens in smoke mode, artifact emission, drift exit codes,
//! and `--list`.

use std::path::PathBuf;
use std::process::Command;

fn farm() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rtsim-farm"));
    // Smoke mode everywhere: test suites must stay fast.
    cmd.env("RTSIM_BENCH_SMOKE", "1");
    cmd
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtsim_farm_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn check_passes_against_committed_goldens() {
    let output = farm().arg("--check").output().unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "--check failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("22 cells match"), "{stdout}");
    assert!(stdout.contains("smoke subset"), "{stdout}");
}

#[test]
fn check_honours_rtsim_workers_identically() {
    let run = |workers: &str| {
        let output = farm()
            .arg("--check")
            .env("RTSIM_WORKERS", workers)
            .output()
            .unwrap();
        assert!(output.status.success(), "workers={workers}");
    };
    run("1");
    run("4");
    run("8");
}

#[test]
fn check_emits_campaign_artifacts() {
    let dir = scratch_dir("artifacts");
    let output = farm()
        .arg("--check")
        .env("RTSIM_CAMPAIGN_OUT", &dir)
        .output()
        .unwrap();
    assert!(output.status.success());
    let jsonl = std::fs::read_to_string(dir.join("farm.jsonl")).unwrap();
    assert_eq!(jsonl.lines().count(), 22, "one JSONL record per smoke cell");
    assert!(jsonl.contains("\"scenario\":\"paper_fig6\""));
    let csv = std::fs::read_to_string(dir.join("farm.csv")).unwrap();
    assert_eq!(csv.lines().count(), 23, "header + one CSV row per cell");
    assert!(csv.starts_with("scenario,policy,mode,cores,hash"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_fails_on_drifted_goldens_and_names_the_cell() {
    // Point the binary at a tampered copy of the goldens: flip one
    // cell's hash. --check must exit nonzero and name that exact cell.
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/goldens/farm.jsonl"
    ))
    .unwrap();
    let victim = "\"scenario\":\"design_space\",\"policy\":\"fifo\",\"mode\":\"preemptive\"";
    assert!(committed.contains(victim), "victim cell missing from goldens");
    let tampered: String = committed
        .lines()
        .map(|line| {
            if line.contains(victim) {
                let marker = "\"hash\":\"";
                let start = line.find(marker).unwrap() + marker.len();
                format!("{}{}{}\n", &line[..start], "f".repeat(16), &line[start + 16..])
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    let dir = scratch_dir("tamper");
    let goldens = dir.join("farm.jsonl");
    std::fs::write(&goldens, tampered).unwrap();

    let output = farm()
        .arg("--check")
        .env("RTSIM_FARM_GOLDENS", &goldens)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!output.status.success(), "tampered goldens passed --check");
    assert!(
        stderr.contains("design_space/fifo/preemptive"),
        "diff does not name the drifted cell:\n{stderr}"
    );
    assert!(stderr.contains("--bless"), "no remediation hint:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_fails_cleanly_without_goldens() {
    let dir = scratch_dir("missing");
    let output = farm()
        .arg("--check")
        .env("RTSIM_FARM_GOLDENS", dir.join("nope.jsonl"))
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--bless"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_names_every_scenario_and_policy() {
    let output = farm().arg("--list").output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in [
        "quickstart",
        "smp_partitioned",
        "smp_global",
        "global_edf",
        "paper_fig6",
        "paper_fig7",
        "automotive_ecu",
        "mpeg2_soc",
        "design_space",
        "custom_policy",
        "rate_monotonic",
        "fn_policy",
    ] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

#[test]
fn unknown_flag_is_rejected() {
    let output = farm().arg("--frobnicate").output().unwrap();
    assert!(!output.status.success());
}
