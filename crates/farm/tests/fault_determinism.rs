//! Fault-plan determinism properties.
//!
//! A [`FaultPlan`] is part of the model, not of the run: the same seed
//! must replay to the same behaviour no matter how the simulation is
//! hosted. Pinned here:
//!
//! - the fault cells of the farm matrix reduce to bit-identical results
//!   for any worker count (1, 4, 8) of the campaign pool;
//! - both kernel execution modes reduce every fault cell to the same
//!   fingerprint *and* the same [`RobustnessSummary`];
//! - a plan whose injectors can never fire (probability 0, jitter bound
//!   0) leaves the canonical trace byte-identical to a run with no plan
//!   at all — installing the machinery is observationally free.

use rtsim_farm::registry::{full_matrix, run_cell_with_mode, run_matrix, Cell};
use rtsim_farm::scenarios::automotive_system;
use rtsim_kernel::{ExecMode, SimDuration, SimTime};
use rtsim_mcse::FaultPlan;
use rtsim_trace::{canonical, RobustnessSummary};

/// Every fault cell of the full matrix.
fn fault_cells() -> Vec<Cell> {
    full_matrix()
        .into_iter()
        .filter(|c| c.scenario.starts_with("fault_"))
        .collect()
}

#[test]
fn worker_count_does_not_change_fault_cells() {
    let cells = fault_cells();
    assert_eq!(cells.len(), 64);
    let one = run_matrix(&cells, 1);
    let four = run_matrix(&cells, 4);
    let eight = run_matrix(&cells, 8);
    assert_eq!(one, four);
    assert_eq!(one, eight);
    // Every cell really injected something.
    for r in &one {
        assert!(r.fingerprint.faults > 0, "{} injected nothing", r.cell.label());
    }
}

#[test]
fn both_exec_modes_replay_to_the_same_robustness_summary() {
    for scenario in ["fault_drop_automotive", "fault_jitter_sweep", "fault_degraded_sensor"] {
        let summary = |mode: ExecMode| {
            let cell = fault_cells()
                .into_iter()
                .find(|c| c.scenario == scenario && c.preemptive)
                .unwrap();
            run_cell_with_mode(cell, mode)
        };
        let thread = summary(ExecMode::Thread);
        let segment = summary(ExecMode::Segment);
        assert_eq!(thread, segment, "{scenario}");
    }
}

#[test]
fn zero_probability_plan_is_byte_identical_to_no_plan() {
    let run = |plan: Option<FaultPlan>| {
        let mut model = automotive_system(&Default::default());
        if let Some(plan) = plan {
            model.fault_plan(plan);
        }
        let mut system = model.elaborate().unwrap();
        system.run().unwrap();
        canonical(&system.trace())
    };
    let nominal = run(None);
    // Injectors that can never fire: probability-0 dropout, zero-width
    // drop window, zero-bound jitter.
    let armed = run(Some(
        FaultPlan::seeded(0, 99)
            .drop_probability("q_telemetry", 0.0)
            .drop_window(
                "q_dash",
                SimTime::ZERO + SimDuration::from_us(10),
                SimTime::ZERO + SimDuration::from_us(10),
            ),
    ));
    assert_eq!(nominal, armed);
    assert!(!nominal.is_empty());
}

#[test]
fn robustness_summary_counts_the_injections() {
    let mut system = rtsim_farm::scenarios::fault_degraded_sensor_system()
        .elaborate()
        .unwrap();
    system.run().unwrap();
    let trace = system.trace();
    let summary = RobustnessSummary::from_trace(&trace, 0);
    assert!(summary.dropped_messages > 0, "{summary:?}");
    assert!(summary.degraded_entries > 0, "{summary:?}");
    assert_eq!(summary.recoveries, summary.degraded_entries, "{summary:?}");
    assert!(summary.worst_recovery_ps > 0, "{summary:?}");
    assert_eq!(
        summary.faults,
        summary.dropped_messages
            + summary.dropped_signals
            + summary.jitter_events
            + summary.bursts
            + summary.degraded_entries
            + summary.recoveries,
        "{summary:?}"
    );
}
