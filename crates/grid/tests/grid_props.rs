//! Property tests of the grid's two invariants, on the workspace's
//! seeded harness (replay one case with `RTSIM_PROP_SEED=<seed>`):
//!
//! 1. merge invariance — for random small grids, the merged results
//!    across shard counts {1, 2, 4} are identical to the unsharded
//!    campaign, record-for-record and byte-for-byte;
//! 2. cache transparency — a second (warm) run is 100 % cache hits and
//!    produces byte-identical JSONL, even under a different shard count.

use rtsim_campaign::JobCtx;
use rtsim_grid::{merge_shard_jsonl, CacheStore, Grid, Record};
use rtsim_kernel::testutil::check;

/// A job result exercising every codec shape the workspace uses:
/// string, scalar and array fields, all integer-exact.
#[derive(Debug, Clone, PartialEq)]
struct Draws {
    label: String,
    index: u64,
    draws: Vec<u64>,
}

impl Record for Draws {
    fn encode(&self) -> String {
        let draws: Vec<String> = self.draws.iter().map(u64::to_string).collect();
        format!(
            r#"{{"label":"{}","index":{},"draws":[{}]}}"#,
            self.label,
            self.index,
            draws.join(",")
        )
    }
    fn decode(line: &str) -> Option<Self> {
        Some(Draws {
            label: rtsim_grid::record::string_field(line, "label")?,
            index: rtsim_grid::record::u64_field(line, "index")?,
            draws: rtsim_grid::record::u64_array_field(line, "draws")?,
        })
    }
}

/// The grid job: a workload that is a pure function of the job's forked
/// stream and index, drawing a variable number of values so shards end
/// at staggered stream positions.
fn job(ctx: &mut JobCtx) -> Draws {
    let n = 1 + (ctx.index() % 4);
    Draws {
        label: format!("job{}", ctx.index()),
        index: ctx.index() as u64,
        draws: (0..n).map(|_| ctx.rng().next_u64()).collect(),
    }
}

fn config(index: usize) -> String {
    format!("draws-v1/point{index}")
}

fn scratch(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rtsim-grid-props-{}-{tag:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn merged_results_are_shard_invariant() {
    check(
        24,
        |rng| (rng.gen_range(1usize..=20), rng.next_u64()),
        |&(jobs, seed)| {
            let run = |shards| {
                Grid::new("prop-inv", seed)
                    .no_cache()
                    .workers(3)
                    .shards(shards)
                    .run(jobs, config, job)
            };
            let unsharded = run(1);
            assert_eq!(unsharded.records.len(), jobs);
            for shards in [2, 4] {
                let sharded = run(shards);
                assert_eq!(
                    sharded.merged_jsonl(),
                    unsharded.merged_jsonl(),
                    "{shards} shards, {jobs} jobs, seed {seed:#x}"
                );
                assert_eq!(sharded.records, unsharded.records);
                // The per-shard slices reassemble the merged set.
                let parts: Vec<String> = (0..sharded.shards.len())
                    .map(|s| sharded.shard_jsonl(s))
                    .collect();
                assert_eq!(merge_shard_jsonl(&parts), unsharded.merged_jsonl());
            }
        },
    );
}

#[test]
fn warm_reruns_are_all_hits_and_byte_identical() {
    check(
        16,
        |rng| (rng.gen_range(1usize..=16), rng.next_u64()),
        |&(jobs, seed)| {
            let dir = scratch(seed ^ jobs as u64);
            let run = |shards| {
                Grid::new("prop-cache", seed)
                    .cache(CacheStore::new(&dir))
                    .workers(2)
                    .shards(shards)
                    .run(jobs, config, job)
            };
            let cold = run(2);
            assert_eq!(cold.hits(), 0, "fresh cache cannot hit");
            assert_eq!(cold.misses(), jobs);
            let warm = run(4);
            assert_eq!(warm.hits(), jobs, "warm run must be 100% hits");
            assert_eq!(warm.misses(), 0);
            assert_eq!(warm.merged_jsonl(), cold.merged_jsonl());
            assert_eq!(warm.records, cold.records);
            // And the cache never perturbs results: a cache-free run of
            // the same grid produces the same bytes.
            let free = Grid::new("prop-cache", seed)
                .no_cache()
                .workers(2)
                .shards(1)
                .run(jobs, config, job);
            assert_eq!(free.merged_jsonl(), cold.merged_jsonl());
            let _ = std::fs::remove_dir_all(&dir);
        },
    );
}
