//! The grid engine: shard splitting, cache probing, ordered merging.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rtsim_campaign::{workers_from_env, Campaign, JobCtx};

use crate::cache::{job_key, CacheStore};
use crate::record::Record;

/// Reads the shard count from `RTSIM_GRID_SHARDS`, defaulting to 1 (one
/// campaign, no splitting). `0` means 1, like `RTSIM_WORKERS`; parsing
/// shares [`rtsim_campaign::env_usize`] (trimmed, warns on garbage).
pub fn shards_from_env() -> usize {
    rtsim_campaign::env_usize("RTSIM_GRID_SHARDS")
        .map(|n| n.max(1))
        .unwrap_or(1)
}

/// The contiguous global-index range of shard `shard` among `shards`
/// over `jobs` jobs: balanced front-loaded split (the first `jobs %
/// shards` shards get one extra job).
pub fn shard_range(jobs: usize, shards: usize, shard: usize) -> std::ops::Range<usize> {
    let shards = shards.max(1);
    assert!(shard < shards, "shard {shard} out of {shards}");
    let base = jobs / shards;
    let extra = jobs % shards;
    let start = shard * base + shard.min(extra);
    let len = base + usize::from(shard < extra);
    start..start + len
}

/// Concatenates per-shard JSONL texts (in shard order) into one merged
/// result set, normalizing each part to end in exactly one newline.
///
/// Because shards cover contiguous, ascending global-index ranges, the
/// concatenation *is* the job-index-ordered merge — this is what the
/// `rtsim-grid --merge` driver applies to shard artifacts.
pub fn merge_shard_jsonl<S: AsRef<str>>(parts: &[S]) -> String {
    let mut out = String::new();
    for part in parts {
        let trimmed = part.as_ref().trim_end_matches('\n');
        if trimmed.is_empty() {
            continue;
        }
        out.push_str(trimmed);
        out.push('\n');
    }
    out
}

/// A campaign-of-campaigns over a parameter grid: splits `0..jobs` into
/// contiguous shards, runs each shard as an independent deterministic
/// [`Campaign`] (per-job streams forked from the grid seed by **global**
/// index via [`Campaign::first_index`]), probes the result cache before
/// simulating, and merges per-shard results into one job-index-ordered
/// set.
///
/// Two invariants, both tested property-style:
///
/// 1. **Shard invariance** — any shard count (and any worker count)
///    yields bit-identical merged JSONL, so a grid can be split across
///    processes or machines freely.
/// 2. **Cache transparency** — a job served from the cache contributes
///    exactly the bytes (and the decoded record) the simulation would
///    have produced; a warm re-run is 100 % hits and byte-identical.
#[derive(Debug)]
pub struct Grid {
    name: String,
    seed: u64,
    shards: usize,
    workers: usize,
    cache: Option<CacheStore>,
}

impl Grid {
    /// Creates a grid. Shard count defaults to `RTSIM_GRID_SHARDS`
    /// ([`shards_from_env`]), worker count to `RTSIM_WORKERS`
    /// ([`workers_from_env`]), and the cache to `RTSIM_GRID_CACHE`
    /// ([`CacheStore::from_env`]; no caching when unset).
    pub fn new(name: &str, seed: u64) -> Self {
        Grid {
            name: name.to_owned(),
            seed,
            shards: shards_from_env(),
            workers: workers_from_env(),
            cache: CacheStore::from_env(),
        }
    }

    /// Overrides the shard count (clamped to at least 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-shard worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Uses `cache` as the result store.
    #[must_use]
    pub fn cache(mut self, cache: CacheStore) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Disables result caching (overriding `RTSIM_GRID_CACHE`).
    #[must_use]
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Runs `jobs` grid points and merges every shard's results in
    /// global job-index order.
    ///
    /// `config` renders the *configuration fingerprint* of a job index —
    /// the part of the cache key that is not positional. It must cover
    /// everything the job's behaviour depends on besides the grid seed
    /// and index (scenario parameters, workload sizes, policy names), so
    /// that editing a point's configuration invalidates exactly its
    /// cache entries.
    ///
    /// `job` simulates one point; it only runs on a cache miss.
    ///
    /// # Panics
    ///
    /// Panics if a job panics, naming the job's global index and config
    /// fingerprint (determinism makes the failure replayable).
    pub fn run<T, C, F>(&self, jobs: usize, config: C, job: F) -> GridReport<T>
    where
        T: Record + Send,
        C: Fn(usize) -> String + Send + Sync,
        F: Fn(&mut JobCtx) -> T + Send + Sync,
    {
        let started = Instant::now();
        let shards = self.shards.min(jobs).max(1);
        let mut records = Vec::with_capacity(jobs);
        let mut lines = Vec::with_capacity(jobs);
        let mut job_walls = Vec::with_capacity(jobs);
        let mut summaries = Vec::with_capacity(shards);

        for shard in 0..shards {
            let range = shard_range(jobs, shards, shard);
            let hits = AtomicUsize::new(0);
            let misses = AtomicUsize::new(0);
            let report = Campaign::new(&format!("{}/shard{shard}", self.name), self.seed)
                .workers(self.workers)
                .first_index(range.start)
                .run(range.len(), |ctx| {
                    let index = ctx.index();
                    if let Some(cache) = &self.cache {
                        let key = job_key(self.seed, index as u64, &config(index));
                        if let Some(line) = cache.load(key) {
                            if let Some(record) = T::decode(&line) {
                                hits.fetch_add(1, Ordering::Relaxed);
                                return (line, record);
                            }
                            // Undecodable entry: treat as a miss and
                            // overwrite below.
                        }
                        let record = job(ctx);
                        let line = record.encode();
                        if let Err(e) = cache.store(key, &line) {
                            eprintln!(
                                "grid `{}`: cannot cache job {index} ({key:016x}): {e}",
                                self.name
                            );
                        }
                        misses.fetch_add(1, Ordering::Relaxed);
                        (line, record)
                    } else {
                        let record = job(ctx);
                        misses.fetch_add(1, Ordering::Relaxed);
                        (record.encode(), record)
                    }
                });

            let summary = ShardSummary {
                shard,
                start: range.start,
                jobs: range.len(),
                hits: hits.into_inner(),
                misses: misses.into_inner(),
                wall: report.wall,
            };
            job_walls.extend(report.outcomes.iter().map(|o| o.wall));
            match report.into_values() {
                Ok(values) => {
                    for (line, record) in values {
                        lines.push(line);
                        records.push(record);
                    }
                }
                Err((index, panic)) => panic!(
                    "grid `{}` job {index} [{}] failed: {panic}",
                    self.name,
                    config(index)
                ),
            }
            summaries.push(summary);
        }

        GridReport {
            name: self.name.clone(),
            seed: self.seed,
            jobs,
            workers: self.workers,
            records,
            lines,
            job_walls,
            shards: summaries,
            wall: started.elapsed(),
        }
    }
}

/// Per-shard accounting of one grid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// First global job index of the shard.
    pub start: usize,
    /// Number of jobs in the shard.
    pub jobs: usize,
    /// Jobs served from the cache.
    pub hits: usize,
    /// Jobs simulated (and, with a cache, stored).
    pub misses: usize,
    /// Wall time of the shard's campaign.
    pub wall: Duration,
}

/// Merged outcome of a grid run: every record and its JSONL line in
/// global job-index order, plus cache and shard accounting.
#[derive(Debug, Clone)]
pub struct GridReport<T> {
    /// Grid name (used in diagnostics and artifact files).
    pub name: String,
    /// The grid seed all job streams were forked from.
    pub seed: u64,
    /// Total jobs across all shards.
    pub jobs: usize,
    /// Per-shard worker count used.
    pub workers: usize,
    /// Every job's decoded record, in global job-index order.
    pub records: Vec<T>,
    /// Every job's JSONL line, in global job-index order.
    pub lines: Vec<String>,
    /// Every job's wall time (cache hits are near-zero), in order.
    pub job_walls: Vec<Duration>,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Total grid wall time.
    pub wall: Duration,
}

impl<T> GridReport<T> {
    /// Jobs served from the cache, summed over shards.
    pub fn hits(&self) -> usize {
        self.shards.iter().map(|s| s.hits).sum()
    }

    /// Jobs simulated, summed over shards.
    pub fn misses(&self) -> usize {
        self.shards.iter().map(|s| s.misses).sum()
    }

    /// Cache hit rate in `[0, 1]` (0 on an empty grid).
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.hits() as f64 / self.jobs as f64
        }
    }

    /// The merged result set as JSONL (one line per job, global
    /// job-index order) — the artifact `rtsim-grid --merge` writes and
    /// the byte-identity the shard-invariance property compares.
    pub fn merged_jsonl(&self) -> String {
        merge_shard_jsonl(&self.lines)
    }

    /// The JSONL text of one shard's slice of the merged results.
    pub fn shard_jsonl(&self, shard: usize) -> String {
        let s = &self.shards[shard];
        merge_shard_jsonl(&self.lines[s.start..s.start + s.jobs])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Rec {
        index: u64,
        draw: u64,
    }

    impl Record for Rec {
        fn encode(&self) -> String {
            format!(r#"{{"index":{},"draw":{}}}"#, self.index, self.draw)
        }
        fn decode(line: &str) -> Option<Self> {
            Some(Rec {
                index: crate::record::u64_field(line, "index")?,
                draw: crate::record::u64_field(line, "draw")?,
            })
        }
    }

    fn draw_job(ctx: &mut JobCtx) -> Rec {
        Rec {
            index: ctx.index() as u64,
            draw: ctx.rng().next_u64(),
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rtsim-grid-run-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_ranges_partition_the_index_space() {
        for (jobs, shards) in [(10, 1), (10, 3), (7, 7), (3, 5), (0, 4), (98, 4)] {
            let mut next = 0;
            for shard in 0..shards {
                let r = shard_range(jobs, shards, shard);
                assert_eq!(r.start, next, "jobs {jobs} shards {shards} shard {shard}");
                next = r.end;
            }
            assert_eq!(next, jobs);
        }
    }

    #[test]
    fn shard_count_does_not_change_merged_output() {
        let run = |shards| {
            Grid::new("inv", 42)
                .no_cache()
                .workers(3)
                .shards(shards)
                .run(11, |i| format!("cfg{i}"), draw_job)
        };
        let one = run(1);
        assert_eq!(one.records.len(), 11);
        assert_eq!(one.records[4].index, 4);
        for shards in [2, 4, 11, 64] {
            let sharded = run(shards);
            assert_eq!(sharded.merged_jsonl(), one.merged_jsonl(), "{shards} shards");
            assert_eq!(sharded.records, one.records);
        }
    }

    #[test]
    fn shard_slices_reassemble_the_merged_set() {
        let report = Grid::new("slices", 7)
            .no_cache()
            .workers(2)
            .shards(3)
            .run(8, |i| i.to_string(), draw_job);
        let parts: Vec<String> = (0..3).map(|s| report.shard_jsonl(s)).collect();
        assert_eq!(merge_shard_jsonl(&parts), report.merged_jsonl());
        assert_eq!(report.shards.iter().map(|s| s.jobs).sum::<usize>(), 8);
    }

    #[test]
    fn cache_round_trip_hits_everything_and_preserves_bytes() {
        let dir = scratch("warm");
        let run = |shards| {
            Grid::new("warm", 9)
                .cache(CacheStore::new(&dir))
                .workers(2)
                .shards(shards)
                .run(6, |i| format!("point{i}"), draw_job)
        };
        let cold = run(2);
        assert_eq!((cold.hits(), cold.misses()), (0, 6));
        // Warm run, different shard count: all hits, identical bytes.
        let warm = run(3);
        assert_eq!((warm.hits(), warm.misses()), (6, 0));
        assert_eq!(warm.merged_jsonl(), cold.merged_jsonl());
        assert_eq!(warm.records, cold.records);
        assert!((warm.hit_rate() - 1.0).abs() < f64::EPSILON);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_config_invalidates_only_its_jobs() {
        let dir = scratch("invalidate");
        let grid = |tag: &'static str| {
            Grid::new("inval", 5)
                .cache(CacheStore::new(&dir))
                .workers(1)
                .shards(1)
                .run(
                    4,
                    move |i| if i == 2 { format!("{tag}{i}") } else { format!("v{i}") },
                    draw_job,
                )
        };
        let cold = grid("v");
        assert_eq!(cold.misses(), 4);
        let warm = grid("w"); // job 2's config fingerprint changed
        assert_eq!((warm.hits(), warm.misses()), (3, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_cache_entries_are_recomputed() {
        let dir = scratch("corrupt");
        let store = CacheStore::new(&dir);
        let run = || {
            Grid::new("corrupt", 3)
                .cache(store.clone())
                .workers(1)
                .run(2, |i| i.to_string(), draw_job)
        };
        let cold = run();
        let key = job_key(3, 0, "0");
        store.store(key, "not json at all").unwrap();
        let warm = run();
        assert_eq!((warm.hits(), warm.misses()), (1, 1));
        assert_eq!(warm.merged_jsonl(), cold.merged_jsonl());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_grid_is_an_empty_report() {
        let report = Grid::new("empty", 1).no_cache().shards(4).run(0, |_| String::new(), draw_job);
        assert_eq!(report.jobs, 0);
        assert!(report.records.is_empty());
        assert_eq!(report.merged_jsonl(), "");
        assert_eq!(report.hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "grid `boom` job 3 [cfg3] failed")]
    fn job_panics_name_the_global_index_and_config() {
        Grid::new("boom", 1).no_cache().shards(2).workers(2).run(
            5,
            |i| format!("cfg{i}"),
            |ctx| {
                if ctx.index() == 3 {
                    panic!("kaboom");
                }
                draw_job(ctx)
            },
        );
    }
}
