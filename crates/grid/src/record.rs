//! The JSONL record contract between grid jobs and the result cache.
//!
//! A grid persists each job's result as one JSON Lines record; on a
//! cache hit the record is *decoded back* instead of re-simulated, so —
//! unlike plain campaign output — grid records must round-trip. The
//! [`Record`] trait captures that contract, and the field scanners below
//! are the decoding half: enough of a parser for the flat, escape-free
//! records this workspace writes (the same scanning approach the farm's
//! golden checker has always used), with no general JSON parser in the
//! hermetic tree.

/// A job result that can round-trip through one JSONL line.
///
/// `decode(encode(x)) == Some(x)` must hold bit-exactly — the grid's
/// merge-invariance guarantee ("a cached job equals a simulated job")
/// is only as strong as the codec. Encode every field as an integer
/// (picoseconds, counts, hashes-as-hex) rather than a float unless the
/// float's shortest round-trip formatting is what you store.
pub trait Record: Sized {
    /// Renders the record as one JSONL line (no trailing newline).
    fn encode(&self) -> String;
    /// Parses a line produced by [`encode`](Record::encode); `None` on
    /// anything malformed (the grid treats that entry as a cache miss).
    fn decode(line: &str) -> Option<Self>;
}

/// Extracts the string value of `"key":"…"` from a flat record line.
/// Assumes the value contains no escape sequences, which holds for
/// every record this workspace writes.
pub fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

/// Extracts the unsigned-integer value of `"key":n`.
pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts the unsigned-integer array value of `"key":[n,n,…]`.
pub fn u64_array_field(line: &str, key: &str) -> Option<Vec<u64>> {
    let marker = format!("\"{key}\":[");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find(']')? + start;
    let body = &line[start..end];
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|n| n.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"{"name":"cell/a","count":42,"lat_ps":[1,2,30],"empty":[],"tail":7}"#;

    #[test]
    fn scans_string_and_int_fields() {
        assert_eq!(string_field(LINE, "name").unwrap(), "cell/a");
        assert_eq!(u64_field(LINE, "count"), Some(42));
        assert_eq!(u64_field(LINE, "tail"), Some(7));
        assert_eq!(string_field(LINE, "missing"), None);
        assert_eq!(u64_field(LINE, "missing"), None);
    }

    #[test]
    fn scans_arrays() {
        assert_eq!(u64_array_field(LINE, "lat_ps"), Some(vec![1, 2, 30]));
        assert_eq!(u64_array_field(LINE, "empty"), Some(Vec::new()));
        assert_eq!(u64_array_field(LINE, "missing"), None);
        assert_eq!(u64_array_field(r#"{"a":[1,x]}"#, "a"), None);
    }
}
