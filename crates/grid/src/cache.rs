//! The content-addressed job-result store.
//!
//! One file per job, named by the 16-hex-digit FNV-1a key of the job's
//! identity, each containing that job's JSONL record. Because the key
//! covers `(grid seed, global job index, config fingerprint)`, editing
//! analysis code or re-running an unchanged grid hits every entry, while
//! changing a point's configuration (or the seed) misses exactly the
//! affected jobs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rtsim_campaign::Fnv1a;

/// Environment variable naming the cache directory. When set, grids
/// constructed with [`Grid::new`](crate::Grid::new) cache automatically.
pub const CACHE_ENV: &str = "RTSIM_GRID_CACHE";

/// Cache key of one grid job.
///
/// Format (`grid-cache-v1`, pinned in ROADMAP.md): FNV-1a over the
/// domain tag `"rtsim-grid-cache-v1"`, the grid seed (little-endian
/// u64), the global job index (little-endian u64), and the UTF-8 bytes
/// of the job's config fingerprint string. Rendered as 16 lowercase hex
/// digits in file names.
pub fn job_key(seed: u64, index: u64, config: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"rtsim-grid-cache-v1");
    h.write(&seed.to_le_bytes());
    h.write(&index.to_le_bytes());
    h.write(config.as_bytes());
    h.finish()
}

/// A directory of cached job records, addressed by [`job_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        CacheStore { dir: dir.into() }
    }

    /// The store named by [`CACHE_ENV`], if the variable is set and
    /// non-empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var(CACHE_ENV) {
            Ok(dir) if !dir.is_empty() => Some(CacheStore::new(dir)),
            _ => None,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for `key`.
    fn entry(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.jsonl"))
    }

    /// Loads the cached record line for `key`, if present.
    ///
    /// Returns the line without its trailing newline. A missing entry is
    /// silently `None`; an entry that exists but is damaged — unreadable,
    /// non-UTF-8, empty, missing the trailing newline every writer
    /// appends (a truncated write by a non-atomic external tool), or
    /// holding more than one line — warns on stderr and is also `None`,
    /// so the caller simply re-simulates and overwrites. Corruption must
    /// never panic a grid or wedge a long-running server; the entry is
    /// self-healing on the next store.
    ///
    /// Concurrent readers are safe against concurrent [`store`]s of the
    /// same key because writers publish atomically (tempfile +
    /// `rename`): a reader observes either the old complete entry or the
    /// new complete entry, never a torn one.
    ///
    /// [`store`]: Self::store
    pub fn load(&self, key: u64) -> Option<String> {
        let path = self.entry(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "grid cache: ignoring unreadable entry {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        let Ok(text) = String::from_utf8(bytes) else {
            eprintln!(
                "grid cache: ignoring non-UTF-8 entry {} (corrupt; will re-simulate)",
                path.display()
            );
            return None;
        };
        let Some(line) = text.strip_suffix('\n') else {
            eprintln!(
                "grid cache: ignoring truncated entry {} (no trailing newline; will re-simulate)",
                path.display()
            );
            return None;
        };
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.is_empty() || line.contains('\n') {
            eprintln!(
                "grid cache: ignoring malformed entry {} (expected exactly one record line)",
                path.display()
            );
            return None;
        }
        Some(line.to_owned())
    }

    /// Stores `line` (one JSONL record, no newline needed) under `key`.
    ///
    /// The write goes to a temporary sibling first and is renamed into
    /// place, so concurrent writers of the same key — which by
    /// construction carry identical content — can never leave a torn
    /// entry behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, full disk).
    pub fn store(&self, key: u64, line: &str) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.entry(key);
        let tmp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        fs::write(&tmp, format!("{line}\n"))?;
        fs::rename(&tmp, &path)
    }

    /// Number of entries currently in the store (diagnostics only).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` when the store holds no entries (or does not exist yet).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rtsim-grid-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_separate_every_component() {
        let base = job_key(1, 2, "cfg");
        assert_eq!(job_key(1, 2, "cfg"), base);
        assert_ne!(job_key(9, 2, "cfg"), base);
        assert_ne!(job_key(1, 3, "cfg"), base);
        assert_ne!(job_key(1, 2, "cfg2"), base);
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = scratch("roundtrip");
        let store = CacheStore::new(&dir);
        let key = job_key(7, 0, "a");
        assert_eq!(store.load(key), None);
        assert!(store.is_empty());
        store.store(key, r#"{"v":1}"#).unwrap();
        assert_eq!(store.load(key).as_deref(), Some(r#"{"v":1}"#));
        assert_eq!(store.len(), 1);
        // Overwrite is idempotent.
        store.store(key, r#"{"v":1}"#).unwrap();
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_entries_are_ignored_not_fatal() {
        let dir = scratch("damaged");
        let store = CacheStore::new(&dir);
        let key = job_key(1, 1, "x");
        store.store(key, r#"{"v":9}"#).unwrap();

        // Truncated: the trailing newline the writer always appends is
        // gone, as a torn non-atomic write would leave it.
        fs::write(store.entry(key), r#"{"v":9}"#).unwrap();
        assert_eq!(store.load(key), None);

        // Empty file.
        fs::write(store.entry(key), "").unwrap();
        assert_eq!(store.load(key), None);

        // More than one record line.
        fs::write(store.entry(key), "{\"v\":9}\n{\"v\":10}\n").unwrap();
        assert_eq!(store.load(key), None);

        // Non-UTF-8 garbage.
        fs::write(store.entry(key), [0xff, 0xfe, 0x00, b'\n']).unwrap();
        assert_eq!(store.load(key), None);

        // A fresh store heals the entry in place.
        store.store(key, r#"{"v":11}"#).unwrap();
        assert_eq!(store.load(key).as_deref(), Some(r#"{"v":11}"#));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_env_requires_a_non_empty_value() {
        // NB: env mutation is process-global; single test covers all
        // cases so they cannot race.
        std::env::remove_var(CACHE_ENV);
        assert_eq!(CacheStore::from_env(), None);
        std::env::set_var(CACHE_ENV, "");
        assert_eq!(CacheStore::from_env(), None);
        std::env::set_var(CACHE_ENV, "/tmp/rtsim-grid-cache-env");
        assert_eq!(
            CacheStore::from_env(),
            Some(CacheStore::new("/tmp/rtsim-grid-cache-env"))
        );
        std::env::remove_var(CACHE_ENV);
    }
}
