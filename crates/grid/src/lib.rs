//! # rtsim-grid — sharded campaign grids with job-hash result caching
//!
//! The campaign engine ([`rtsim_campaign`]) runs one batch of
//! independent simulations deterministically; this crate turns batches
//! into *grids*: a campaign-of-campaigns layer for sweeping huge
//! parameter spaces incrementally.
//!
//! - **Sharding.** A grid over `0..jobs` splits into contiguous shards,
//!   each an independent [`Campaign`](rtsim_campaign::Campaign) whose
//!   per-job streams are forked from the grid seed by **global** job
//!   index ([`Campaign::first_index`](rtsim_campaign::Campaign::first_index)),
//!   so any shard count `{1, 2, 4, …}` — and any `RTSIM_WORKERS` — yields
//!   bit-identical merged results. Shard boundaries are invisible; a
//!   grid can be split across processes or machines and the per-shard
//!   JSONL simply concatenates back ([`merge_shard_jsonl`]).
//! - **Result caching.** Each job's JSONL record is stored
//!   content-addressed under an FNV-1a key of `(grid seed, global job
//!   index, config fingerprint)` ([`job_key`]). Re-running a grid after
//!   editing analysis code, or after adding points, only simulates the
//!   cache misses; hits decode the stored record byte-exactly
//!   ([`Record`]). The store lives in the `RTSIM_GRID_CACHE` directory.
//!
//! The `rtsim-grid` binary (in `rtsim-farm`, which supplies the
//! workload) drives the regression-farm matrix through a grid:
//! `--shards N` splits it, `--merge` writes per-shard and merged JSONL
//! artifacts, and `--check-cache` runs a cold/warm round-trip asserting
//! a 100 % warm hit rate with byte-identical output.
//!
//! ## Quick start
//!
//! ```
//! use rtsim_grid::{Grid, Record};
//!
//! #[derive(Debug, PartialEq)]
//! struct Sample(u64);
//! impl Record for Sample {
//!     fn encode(&self) -> String { format!(r#"{{"v":{}}}"#, self.0) }
//!     fn decode(line: &str) -> Option<Self> {
//!         rtsim_grid::record::u64_field(line, "v").map(Sample)
//!     }
//! }
//!
//! let job = |ctx: &mut rtsim_campaign::JobCtx| Sample(ctx.rng().next_u64());
//! let merged = Grid::new("demo", 42).no_cache().shards(1).run(10, |i| i.to_string(), &job);
//! let sharded = Grid::new("demo", 42).no_cache().shards(4).run(10, |i| i.to_string(), &job);
//! assert_eq!(merged.merged_jsonl(), sharded.merged_jsonl()); // shard-invariant
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod record;
mod run;

pub use cache::{job_key, CacheStore, CACHE_ENV};
pub use record::Record;
pub use run::{merge_shard_jsonl, shard_range, shards_from_env, Grid, GridReport, ShardSummary};
