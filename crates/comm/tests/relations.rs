//! Integration tests for the MCSE communication relations, including the
//! paper's Figure 7 mutual-exclusion/priority-inversion scenario and its
//! two remedies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtsim_comm::{EventPolicy, LockMode, MessageQueue, RtEvent, SharedVar};
use rtsim_core::{
    spawn_hw_function, Agent, EngineKind, Processor, ProcessorConfig, TaskConfig, TaskState,
};
use rtsim_kernel::{SimDuration, SimTime, Simulator};
use rtsim_trace::{Trace, TraceRecorder};

const ENGINES: [EngineKind; 2] = [EngineKind::ProcedureCall, EngineKind::DedicatedThread];

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

fn times_us(trace: &Trace, task: &str, state: TaskState) -> Vec<u64> {
    let actor = trace.actor_by_name(task).expect("actor");
    trace
        .records_for(actor)
        .filter_map(|r| match r.data {
            rtsim_trace::TraceData::State(s) if s == state => Some(r.at.as_us()),
            _ => None,
        })
        .collect()
}

#[test]
fn boolean_event_memorizes_one_signal() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let ev = RtEvent::new(&rec, "ev", EventPolicy::Boolean);
        let finish = Arc::new(AtomicU64::new(0));

        // Producer signals twice *before* the consumer ever waits: boolean
        // memorization collapses them into one.
        let tx = ev.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(9), move |t| {
            tx.signal(t);
            tx.signal(t);
            t.execute(us(10));
        });
        let done = Arc::clone(&finish);
        cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(1), move |t| {
            ev.wait(t); // satisfied from memory, at ~10 (after producer)
            let first = t.now().as_us();
            ev.wait(t); // never signalled again: blocks forever
            let _ = first;
            done.store(1, Ordering::Relaxed);
        });
        sim.run_until(SimTime::ZERO + us(1_000)).unwrap();
        // The consumer's second wait never completes: only one signal was
        // memorized.
        assert_eq!(finish.load(Ordering::Relaxed), 0, "{engine}");
    }
}

#[test]
fn counter_event_memorizes_all_signals() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let ev = RtEvent::new(&rec, "ev", EventPolicy::Counter);
        let consumed = Arc::new(AtomicU64::new(0));

        let tx = ev.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(9), move |t| {
            for _ in 0..3 {
                tx.signal(t);
            }
        });
        let counter = Arc::clone(&consumed);
        cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(1), move |t| {
            for _ in 0..3 {
                ev.wait(t);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        sim.run().unwrap();
        assert_eq!(consumed.load(Ordering::Relaxed), 3, "{engine}");
    }
}

#[test]
fn fugitive_signal_without_waiter_is_lost() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let ev = RtEvent::new(&rec, "ev", EventPolicy::Fugitive);
        let reached = Arc::new(AtomicU64::new(0));

        let tx = ev.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("early").priority(9), move |t| {
            tx.signal(t); // nobody waits yet: lost
        });
        let flag = Arc::clone(&reached);
        cpu.spawn_task(&mut sim, TaskConfig::new("late").priority(1), move |t| {
            t.delay(us(10));
            ev.wait(t); // blocks forever
            flag.store(1, Ordering::Relaxed);
        });
        sim.run_until(SimTime::ZERO + us(1_000)).unwrap();
        assert_eq!(reached.load(Ordering::Relaxed), 0, "{engine}");
    }
}

#[test]
fn fugitive_signal_broadcasts_to_all_waiters() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let ev = RtEvent::new(&rec, "go", EventPolicy::Fugitive);
        let woken = Arc::new(AtomicU64::new(0));

        for (name, prio) in [("w1", 3), ("w2", 2)] {
            let ev = ev.clone();
            let woken = Arc::clone(&woken);
            cpu.spawn_task(&mut sim, TaskConfig::new(name).priority(prio), move |t| {
                ev.wait(t);
                woken.fetch_add(1, Ordering::Relaxed);
                t.execute(us(5));
            });
        }
        let tx = ev.clone();
        spawn_hw_function(&mut sim, &rec, "stim", move |hw| {
            hw.delay(us(10));
            tx.signal(hw);
        });
        sim.run().unwrap();
        assert_eq!(woken.load(Ordering::Relaxed), 2, "{engine}");
        // Both ran after the signal, serialized by priority: 10..15, 15..20.
        assert_eq!(sim.now(), SimTime::ZERO + us(20), "{engine}");
    }
}

#[test]
fn queue_delivers_fifo_and_blocks_reader() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let q: MessageQueue<u32> = MessageQueue::new(&rec, "q", 8);
        let order = Arc::new(rtsim_kernel::sync::Mutex::new(Vec::new()));

        let tx = q.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(1), move |t| {
            for v in 0..5 {
                t.execute(us(10));
                tx.write(t, v);
            }
        });
        let sink = Arc::clone(&order);
        cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(9), move |t| {
            for _ in 0..5 {
                let v = q.read(t);
                sink.lock().push((v, t.now().as_us()));
            }
        });
        sim.run().unwrap();
        let order = order.lock();
        assert_eq!(
            *order,
            vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)],
            "{engine}"
        );
    }
}

#[test]
fn full_queue_blocks_writer_until_read() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let q: MessageQueue<u32> = MessageQueue::new(&rec, "q", 2);

        let tx = q.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(9), move |t| {
            for v in 0..4 {
                tx.write(t, v); // 3rd write blocks until the consumer reads
            }
            assert_eq!(t.now().as_us(), 100);
        });
        cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(1), move |t| {
            t.delay(us(100));
            for _ in 0..4 {
                let _ = q.read(t);
            }
        });
        sim.run().unwrap();
    }
}

#[test]
fn try_variants_do_not_block() {
    let mut sim = Simulator::new();
    let rec = TraceRecorder::new();
    let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
    let q: MessageQueue<u32> = MessageQueue::new(&rec, "q", 1);
    let ev = RtEvent::new(&rec, "ev", EventPolicy::Counter);

    cpu.spawn_task(&mut sim, TaskConfig::new("t").priority(1), move |t| {
        assert_eq!(q.try_read(t), None);
        assert_eq!(q.try_write(t, 1), Ok(()));
        assert_eq!(q.try_write(t, 2), Err(2)); // full
        assert_eq!(q.try_read(t), Some(1));
        assert!(!ev.try_wait(t));
        ev.signal(t);
        assert!(ev.try_wait(t));
        assert!(!ev.try_wait(t));
    });
    sim.run().unwrap();
}

#[test]
fn queue_connects_hardware_to_software() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let q: MessageQueue<u64> = MessageQueue::new(&rec, "dma", 4);
        let seen = Arc::new(rtsim_kernel::sync::Mutex::new(Vec::new()));

        let tx = q.clone();
        spawn_hw_function(&mut sim, &rec, "dma_engine", move |hw| {
            for v in 0..3 {
                hw.delay(us(20));
                tx.write(hw, v);
            }
        });
        let sink = Arc::clone(&seen);
        cpu.spawn_task(&mut sim, TaskConfig::new("driver").priority(5), move |t| {
            for _ in 0..3 {
                let v = q.read(t);
                sink.lock().push((v, t.now().as_us()));
                t.execute(us(5));
            }
        });
        sim.run().unwrap();
        assert_eq!(*seen.lock(), vec![(0, 20), (1, 40), (2, 60)], "{engine}");
    }
}

#[test]
fn rendezvous_synchronizes_both_sides() {
    use rtsim_comm::Rendezvous;
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let rv: Rendezvous<u32> = Rendezvous::new(&rec, "rv");

        // Writer offers early and must block until the reader arrives.
        // Timing: writer (higher priority) computes 0..10 and offers; the
        // reader first runs at 10, so its 50 µs delay ends at 60 — the
        // first handshake. The reader then computes 30 µs (60..90) and
        // takes the second offer at 90.
        let tx = rv.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("writer").priority(2), move |t| {
            t.execute(us(10));
            tx.write(t, 1);
            assert_eq!(t.now().as_us(), 60);
            tx.write(t, 2);
            assert_eq!(t.now().as_us(), 90);
        });
        let rx = rv.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("reader").priority(1), move |t| {
            t.delay(us(50));
            assert_eq!(rx.read(t), 1);
            t.execute(us(30));
            assert_eq!(rx.read(t), 2);
        });
        sim.run().unwrap();
        assert_eq!(sim.now(), SimTime::ZERO + us(90), "{engine}");
    }
}

#[test]
fn rendezvous_serves_writers_fifo() {
    use rtsim_comm::Rendezvous;
    let mut sim = Simulator::new();
    let rec = TraceRecorder::new();
    let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
    let rv: Rendezvous<u32> = Rendezvous::new(&rec, "rv");
    for (i, prio) in [(1u32, 5u32), (2, 4), (3, 3)] {
        let tx = rv.clone();
        cpu.spawn_task(
            &mut sim,
            TaskConfig::new(&format!("w{i}")).priority(prio),
            move |t| {
                tx.write(t, i); // all offer at t=0, in priority order
            },
        );
    }
    let order = Arc::new(rtsim_kernel::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&order);
    cpu.spawn_task(&mut sim, TaskConfig::new("reader").priority(1), move |t| {
        for _ in 0..3 {
            sink.lock().push(rv.read(t));
            t.execute(us(5));
        }
    });
    sim.run().unwrap();
    assert_eq!(*order.lock(), vec![1, 2, 3]);
}

#[test]
fn rendezvous_reader_blocks_until_offer() {
    use rtsim_comm::Rendezvous;
    let mut sim = Simulator::new();
    let rec = TraceRecorder::new();
    let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
    let rv: Rendezvous<u32> = Rendezvous::new(&rec, "rv");
    let rx = rv.clone();
    cpu.spawn_task(&mut sim, TaskConfig::new("reader").priority(5), move |t| {
        assert_eq!(rx.read(t), 42); // blocks until 70
        assert_eq!(t.now().as_us(), 70);
    });
    let tx = rv.clone();
    spawn_hw_function(&mut sim, &rec, "hw_writer", move |hw| {
        hw.delay(us(70));
        tx.write(hw, 42);
    });
    sim.run().unwrap();
}

#[test]
fn shared_var_serializes_access() {
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let var = SharedVar::new(&rec, "v", 0u64, LockMode::Plain);

        // Two equal-priority tasks increment under the lock; the final
        // value proves no lost updates despite the in-lock delays.
        for name in ["a", "b"] {
            let var = var.clone();
            cpu.spawn_task(&mut sim, TaskConfig::new(name).priority(1), move |t| {
                for _ in 0..5 {
                    var.with_lock(t, |agent, value| {
                        let snapshot = *value;
                        agent.execute(us(3));
                        *value = snapshot + 1;
                    });
                    t.delay(us(1));
                }
            });
        }
        let check = var.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("checker").priority(0), move |t| {
            t.delay(us(500));
            assert_eq!(check.read(t), 10);
        });
        sim.run().unwrap();
    }
}

/// Builds the Figure 7 cast: `low` (priority 1) holds `SharedVar_1` for
/// 50 µs of in-lock computation starting at t=0; `high` (priority 9)
/// arrives at t=10 and wants the variable; `mid` (priority 5) arrives at
/// t=20 with 30 µs of unrelated computation.
///
/// Returns the time at which `high` finished its access.
fn inversion_scenario(mode: LockMode, engine: EngineKind) -> (u64, Trace) {
    let mut sim = Simulator::new();
    let rec = TraceRecorder::new();
    let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
    let var = SharedVar::new(&rec, "SharedVar_1", 0u32, mode);
    let high_done = Arc::new(AtomicU64::new(0));

    let v = var.clone();
    let done = Arc::clone(&high_done);
    cpu.spawn_task(&mut sim, TaskConfig::new("high").priority(9), move |t| {
        t.delay(us(10));
        let _ = v.read_for(t, us(5));
        done.store(t.now().as_us(), Ordering::Relaxed);
    });
    cpu.spawn_task(&mut sim, TaskConfig::new("mid").priority(5), move |t| {
        t.delay(us(20));
        t.execute(us(30));
    });
    let v = var.clone();
    cpu.spawn_task(&mut sim, TaskConfig::new("low").priority(1), move |t| {
        v.with_lock(t, |agent, _value| {
            agent.execute(us(50));
        });
        t.execute(us(5));
    });
    sim.run().unwrap();
    (high_done.load(Ordering::Relaxed), rec.snapshot())
}

#[test]
fn figure7_plain_mutex_exhibits_priority_inversion() {
    for engine in ENGINES {
        let (high_done, trace) = inversion_scenario(LockMode::Plain, engine);
        // low computes 0..10 (high preempts at 10 and blocks on the
        // resource), 10..20 (mid preempts), mid runs 20..50, low finishes
        // its remaining 30 at 50..80, releases; high reads 80..85.
        assert_eq!(high_done, 85, "{engine}");
        // high really blocked on the resource...
        let hw = times_us(&trace, "high", TaskState::WaitingResource);
        assert_eq!(hw, vec![10], "{engine}");
        // ...and mid ran while high was blocked: the inversion. (The
        // leading 0 is mid's zero-length run before its initial delay.)
        assert_eq!(times_us(&trace, "mid", TaskState::Running), vec![0, 20]);
    }
}

#[test]
fn figure7_preemption_masking_avoids_inversion() {
    // The paper's fix: "disabling preemption during access to shared
    // data". Nothing can preempt low inside the region; high runs at
    // release.
    for engine in ENGINES {
        let (high_done, trace) = inversion_scenario(LockMode::PreemptionMasked, engine);
        // low holds 0..50 uninterrupted; at release high preempts (50),
        // reads 50..55.
        assert_eq!(high_done, 55, "{engine}");
        // high never even reached the resource wait: the lock was free by
        // the time it ran.
        assert_eq!(
            times_us(&trace, "high", TaskState::WaitingResource),
            Vec::<u64>::new(),
            "{engine}"
        );
        // mid ran only after high completed.
        assert_eq!(times_us(&trace, "mid", TaskState::Running), vec![0, 55]);
    }
}

#[test]
fn figure7_priority_inheritance_bounds_the_inversion() {
    for engine in ENGINES {
        let (high_done, trace) = inversion_scenario(LockMode::PriorityInheritance, engine);
        // high blocks at 10, boosting low to priority 9; mid (5) cannot
        // preempt the boosted owner; low finishes its 50 µs region at 50
        // (high's arrival consumed zero CPU), releases and is restored to
        // priority 1; high reads 50..55.
        assert_eq!(high_done, 55, "{engine}");
        assert_eq!(times_us(&trace, "high", TaskState::WaitingResource), vec![10]);
        // mid ran only after high: the inversion is bounded by low's
        // critical section alone.
        assert_eq!(times_us(&trace, "mid", TaskState::Running), vec![0, 55]);
    }
}

#[test]
fn priority_ceiling_blocks_up_to_ceiling_only() {
    // A ceiling-5 variable boosts its low-priority owner to 5: a woken
    // priority-4 task cannot preempt the critical section, but a
    // priority-9 task still can — the distinguishing behaviour versus
    // preemption masking (which would block even the urgent task).
    use rtsim_core::Priority;
    for engine in ENGINES {
        let mut sim = Simulator::new();
        let rec = TraceRecorder::new();
        let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU").engine(engine));
        let var = SharedVar::new(&rec, "v", 0u32, LockMode::PriorityCeiling(Priority(5)));

        let v = var.clone();
        cpu.spawn_task(&mut sim, TaskConfig::new("low").priority(1), move |t| {
            v.with_lock(t, |agent, _| agent.execute(us(50)));
        });
        cpu.spawn_task(&mut sim, TaskConfig::new("mid").priority(4), |t| {
            t.delay(us(10));
            t.execute(us(5));
        });
        cpu.spawn_task(&mut sim, TaskConfig::new("urgent").priority(9), |t| {
            t.delay(us(20));
            t.execute(us(5));
        });
        sim.run().unwrap();
        let trace = rec.snapshot();
        // mid wakes at 10 but cannot preempt the boosted owner: it runs
        // only after the critical section ends (55: urgent went first).
        assert_eq!(
            times_us(&trace, "mid", TaskState::Running),
            vec![0, 55],
            "{engine}"
        );
        // urgent (above the ceiling) preempts the section at 20.
        assert_eq!(
            times_us(&trace, "urgent", TaskState::Running),
            vec![0, 20],
            "{engine}"
        );
        // low: holds 0..20, preempted 20..25, resumes 25..55; at the
        // release its ceiling boost is dropped and the release-time
        // reschedule hands the CPU to mid, so low finishes at 60.
        assert_eq!(
            times_us(&trace, "low", TaskState::Running),
            vec![0, 25, 60],
            "{engine}"
        );
    }
}

#[test]
fn resource_wait_state_is_traced_for_statistics() {
    // Figure 8 item (3): ratio of time waiting on resources.
    let (_, trace) = inversion_scenario(LockMode::Plain, EngineKind::ProcedureCall);
    let stats = rtsim_trace::Statistics::from_trace(&trace, SimTime::ZERO + us(100));
    let high = trace.actor_by_name("high").unwrap();
    let s = stats.task(high).unwrap();
    // Blocked on the resource 10..80 = 70% of the 100 µs horizon.
    assert!((s.resource_ratio - 0.70).abs() < 1e-9, "{}", s.resource_ratio);
    let var = trace.actor_by_name("SharedVar_1").unwrap();
    let rs = stats.relation(var).unwrap();
    assert!(rs.held_ratio > 0.5);
    assert_eq!(rs.reads, 1);
}
