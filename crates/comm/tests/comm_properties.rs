//! Property tests for the communication relations: random operation
//! sequences checked against reference models. Runs on the in-tree
//! `testutil` harness (seeded cases, no external crates).

use rtsim_comm::{EventPolicy, LockMode, MessageQueue, RtEvent, SharedVar};
use rtsim_core::{Processor, ProcessorConfig, TaskConfig};
use rtsim_kernel::testutil::{check, Rng};
use rtsim_kernel::Simulator;
use rtsim_trace::TraceRecorder;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Operations a single task performs against one queue.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    TryWrite(u32),
    TryRead,
}

fn gen_op(rng: &mut Rng) -> QueueOp {
    if rng.gen_bool(0.5) {
        QueueOp::TryWrite(rng.gen_range(0u32..1000))
    } else {
        QueueOp::TryRead
    }
}

/// A message queue driven by one task behaves exactly like a bounded
/// VecDeque, for any operation sequence and capacity.
#[test]
fn queue_matches_reference_model() {
    check(
        32,
        |rng| (rng.gen_vec(1..60, gen_op), rng.gen_range(1usize..6)),
        |(ops, capacity)| {
            let capacity = *capacity;
            let observed = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Simulator::new();
            let rec = TraceRecorder::disabled();
            let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
            let q: MessageQueue<u32> = MessageQueue::new(&rec, "q", capacity);
            let task_ops = ops.clone();
            let sink = Arc::clone(&observed);
            cpu.spawn_task(&mut sim, TaskConfig::new("driver").priority(1), move |t| {
                for op in task_ops {
                    let outcome = match op {
                        QueueOp::TryWrite(v) => q.try_write(t, v).is_ok() as i64,
                        QueueOp::TryRead => q.try_read(t).map_or(-1, i64::from),
                    };
                    sink.lock().unwrap().push(outcome);
                }
            });
            sim.run().unwrap();

            // Reference: a plain bounded deque.
            let mut reference = VecDeque::new();
            let mut expected = Vec::new();
            for op in ops {
                match op {
                    QueueOp::TryWrite(v) => {
                        if reference.len() < capacity {
                            reference.push_back(*v);
                            expected.push(1);
                        } else {
                            expected.push(0);
                        }
                    }
                    QueueOp::TryRead => {
                        expected.push(reference.pop_front().map_or(-1, i64::from));
                    }
                }
            }
            assert_eq!(&*observed.lock().unwrap(), &expected);
        },
    );
}

/// Whatever the protection mode, number of contenders and section
/// lengths, a shared variable's hold/release records strictly
/// alternate — no double acquisition ever.
#[test]
fn shared_var_holds_alternate() {
    check(
        32,
        |rng| {
            (
                rng.gen_range(0usize..4),
                rng.gen_vec(2..5, |r| (r.gen_range(1u64..30), r.gen_range(1u32..9))),
            )
        },
        |(mode_pick, sections)| {
            let mode = [
                LockMode::Plain,
                LockMode::PreemptionMasked,
                LockMode::PriorityInheritance,
                LockMode::PriorityCeiling(rtsim_core::Priority(9)),
            ][*mode_pick];
            let mut sim = Simulator::new();
            let rec = TraceRecorder::new();
            let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
            let var = SharedVar::new(&rec, "v", 0u64, mode);
            for (i, &(len, prio)) in sections.iter().enumerate() {
                let var = var.clone();
                cpu.spawn_task(
                    &mut sim,
                    TaskConfig::new(&format!("t{i}")).priority(prio),
                    move |t| {
                        for _ in 0..3 {
                            var.with_lock(t, |agent, value| {
                                agent.execute(rtsim_kernel::SimDuration::from_us(len));
                                *value += 1;
                            });
                            t.delay(rtsim_kernel::SimDuration::from_us(1));
                        }
                    },
                );
            }
            sim.run().unwrap();
            let trace = rec.snapshot();
            let actor = trace.actor_by_name("v").unwrap();
            let mut held = false;
            let mut transitions = 0usize;
            for r in trace.records_for(actor) {
                if let rtsim_trace::TraceData::ResourceHeld(h) = r.data {
                    assert_ne!(h, held, "hold/release must alternate");
                    held = h;
                    transitions += 1;
                }
            }
            assert!(!held, "released at the end");
            assert_eq!(transitions, sections.len() * 3 * 2);
        },
    );
}

/// Counter events conserve tokens: consumed = min(signalled, waits),
/// and leftover tokens equal the difference.
#[test]
fn counter_event_token_conservation() {
    check(
        32,
        |rng| (rng.gen_range(0u64..30), rng.gen_range(0u64..30)),
        |&(signals, waits)| {
            let consumed = Arc::new(Mutex::new(0u64));
            let mut sim = Simulator::new();
            let rec = TraceRecorder::disabled();
            let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
            let ev = RtEvent::new(&rec, "ev", EventPolicy::Counter);
            let tx = ev.clone();
            cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(2), move |t| {
                for _ in 0..signals {
                    tx.signal(t);
                }
            });
            let ev_wait = ev.clone();
            let count = Arc::clone(&consumed);
            cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(1), move |t| {
                for _ in 0..waits {
                    if !ev_wait.try_wait(t) {
                        // Avoid blocking forever when tokens run out: poll
                        // with try_wait after giving the producer a chance.
                        break;
                    }
                    *count.lock().unwrap() += 1;
                }
            });
            sim.run().unwrap();
            let consumed = *consumed.lock().unwrap();
            assert_eq!(consumed, signals.min(waits));
            assert_eq!(ev.pending(), signals - consumed);
        },
    );
}
