//! The MCSE **event** relation: synchronization between functions.
//!
//! The paper (§2) models synchronization events with three memorization
//! policies:
//!
//! - **fugitive** — no memorization, "like SystemC `sc_event`": a signal
//!   with no waiter is lost;
//! - **boolean** — one level of memorization: a signal sets a flag that
//!   the next wait consumes;
//! - **counter** — every signal increments a count; every wait consumes
//!   one unit.
//!
//! Signalling a memorized event wakes at most one waiter per token;
//! signalling a fugitive event wakes every current waiter (broadcast
//! synchronization, as `sc_event::notify`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rtsim_kernel::sync::Mutex;
use rtsim_core::agent::{Agent, Waiter};
use rtsim_fault::ChannelLane;
use rtsim_trace::{ActorKind, CommKind, FaultKind, TraceRecorder};

/// Memorization policy of an [`RtEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventPolicy {
    /// No memory (SystemC `sc_event`); signals without waiters are lost.
    #[default]
    Fugitive,
    /// One memorized signal (a flag).
    Boolean,
    /// Counted signals (a semaphore-like token count).
    Counter,
}

impl fmt::Display for EventPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventPolicy::Fugitive => "fugitive",
            EventPolicy::Boolean => "boolean",
            EventPolicy::Counter => "counter",
        };
        f.write_str(s)
    }
}

struct EvState {
    policy: EventPolicy,
    tokens: u64,
    waiters: VecDeque<Waiter>,
    /// Installed by a fault plan: consulted once per signal.
    lane: Option<Arc<ChannelLane>>,
}

/// Outcome of one [`RtEvent::wait_attempt`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvWait {
    /// A token was consumed; the wait is over.
    Ready,
    /// The agent's waiter was registered; suspend and (for memorized
    /// policies) attempt again, or (fugitive) finish after the wake.
    Registered {
        /// Whether the event is fugitive — the wake itself is the signal.
        fugitive: bool,
    },
}

/// A synchronization event between MCSE functions, usable across
/// processors and between hardware and software.
///
/// Cloning yields another handle to the same event.
///
/// # Examples
///
/// ```
/// use rtsim_comm::{EventPolicy, RtEvent};
/// use rtsim_core::{Processor, ProcessorConfig, TaskConfig};
/// use rtsim_kernel::{SimDuration, Simulator};
/// use rtsim_trace::TraceRecorder;
///
/// # fn main() -> Result<(), rtsim_kernel::KernelError> {
/// let mut sim = Simulator::new();
/// let rec = TraceRecorder::new();
/// let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
/// let ev = RtEvent::new(&rec, "Event_1", EventPolicy::Boolean);
///
/// let producer_ev = ev.clone();
/// cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(5), move |t| {
///     t.execute(SimDuration::from_us(10));
///     producer_ev.signal(t);
/// });
/// cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(3), move |t| {
///     ev.wait(t);
///     t.execute(SimDuration::from_us(5));
/// });
/// sim.run()?;
/// assert_eq!(sim.now().as_us(), 15);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct RtEvent {
    state: Arc<Mutex<EvState>>,
    actor: rtsim_trace::ActorId,
    recorder: TraceRecorder,
    name: Arc<str>,
}

impl RtEvent {
    /// Creates an event relation with the given memorization policy.
    pub fn new(recorder: &TraceRecorder, name: &str, policy: EventPolicy) -> Self {
        let actor = recorder.register(name, ActorKind::Relation);
        RtEvent {
            state: Arc::new(Mutex::new(EvState {
                policy,
                tokens: 0,
                waiters: VecDeque::new(),
                lane: None,
            })),
            actor,
            recorder: recorder.clone(),
            name: Arc::from(name),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's trace actor.
    pub fn actor(&self) -> rtsim_trace::ActorId {
        self.actor
    }

    /// The configured policy.
    pub fn policy(&self) -> EventPolicy {
        self.state.lock().policy
    }

    /// Number of memorized signals (always 0 for fugitive events).
    pub fn pending(&self) -> u64 {
        self.state.lock().tokens
    }

    /// Installs a fault plan's dropout lane: every subsequent signal
    /// consults it, and a dropped notification vanishes in transit — no
    /// token is memorized, no waiter wakes, and the trace gains a
    /// `drop-signal` fault record on this relation.
    pub fn install_fault_lane(&self, lane: Arc<ChannelLane>) {
        self.state.lock().lane = Some(lane);
    }

    /// Signals the event from `agent`.
    ///
    /// Fugitive: wakes every current waiter, remembers nothing. Boolean:
    /// sets the flag (saturating) and wakes one waiter. Counter: adds a
    /// token and wakes one waiter.
    pub fn signal(&self, agent: &mut dyn Agent) {
        let lane = self.state.lock().lane.clone();
        if let Some(lane) = lane {
            let now = agent.now();
            if lane.should_drop(now) {
                self.recorder.fault(self.actor, now, FaultKind::DropSignal, 0);
                return;
            }
        }
        self.recorder
            .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Signal);
        let to_wake: Vec<Waiter> = {
            let mut st = self.state.lock();
            match st.policy {
                EventPolicy::Fugitive => st.waiters.drain(..).collect(),
                EventPolicy::Boolean => {
                    st.tokens = 1;
                    st.waiters.pop_front().into_iter().collect()
                }
                EventPolicy::Counter => {
                    st.tokens += 1;
                    st.waiters.pop_front().into_iter().collect()
                }
            }
        };
        for waiter in to_wake {
            waiter.wake(agent.kernel());
        }
    }

    /// Non-blocking step of [`wait`](RtEvent::wait). On
    /// [`EvWait::Registered`] the caller must suspend; after the wake, a
    /// fugitive wait completes via
    /// [`finish_fugitive_wait`](RtEvent::finish_fugitive_wait) (the wake
    /// *is* the signal), while memorized policies must attempt again —
    /// another task may have consumed the token between the wake and the
    /// dispatch. Used directly by the segment-mode script interpreter.
    pub fn wait_attempt(&self, agent: &mut dyn Agent) -> EvWait {
        let mut st = self.state.lock();
        match st.policy {
            EventPolicy::Fugitive => {
                st.waiters.push_back(agent.waiter());
                EvWait::Registered { fugitive: true }
            }
            EventPolicy::Boolean | EventPolicy::Counter => {
                if st.tokens > 0 {
                    st.tokens -= 1;
                    drop(st);
                    self.recorder.comm(
                        agent.trace_actor(),
                        agent.now(),
                        self.actor,
                        CommKind::Read,
                    );
                    EvWait::Ready
                } else {
                    st.waiters.push_back(agent.waiter());
                    EvWait::Registered { fugitive: false }
                }
            }
        }
    }

    /// Completes a fugitive wait after the wake: records the consumption.
    pub fn finish_fugitive_wait(&self, agent: &mut dyn Agent) {
        self.recorder
            .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Read);
    }

    /// Blocks `agent` until the event is signalled (consuming one token
    /// for memorized policies). Returns immediately if a token is already
    /// memorized.
    pub fn wait(&self, agent: &mut dyn Agent) {
        loop {
            match self.wait_attempt(agent) {
                EvWait::Ready => return,
                EvWait::Registered { fugitive } => {
                    agent.suspend(false);
                    if fugitive {
                        self.finish_fugitive_wait(agent);
                        return;
                    }
                }
            }
        }
    }

    /// Consumes a token without blocking; `true` on success. Always
    /// `false` for fugitive events (they cannot be polled).
    pub fn try_wait(&self, agent: &mut dyn Agent) -> bool {
        let mut st = self.state.lock();
        if st.policy != EventPolicy::Fugitive && st.tokens > 0 {
            st.tokens -= 1;
            drop(st);
            self.recorder
                .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Read);
            true
        } else {
            false
        }
    }
}

impl fmt::Debug for RtEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("RtEvent")
            .field("name", &self.name)
            .field("policy", &st.policy)
            .field("tokens", &st.tokens)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}
