//! The MCSE **message queue** relation: producer/consumer message passing.
//!
//! A bounded FIFO whose capacity is a parameter (paper §2). Readers block
//! on an empty queue, writers on a full one; both ends work from software
//! tasks (blocking through the RTOS) and hardware functions (blocking on a
//! kernel event), on the same or different processors — which is how the
//! multi-processor examples (e.g. the MPEG-2 SoC) pass data between
//! pipeline stages.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rtsim_kernel::sync::Mutex;
use rtsim_core::agent::{Agent, Waiter};
use rtsim_fault::ChannelLane;
use rtsim_trace::{ActorKind, CommKind, FaultKind, TraceRecorder};

struct QState<T> {
    buffer: VecDeque<T>,
    capacity: usize,
    readers: VecDeque<(u64, Waiter)>,
    writers: VecDeque<(u64, Waiter)>,
    /// Installed by a fault plan: consulted once per message, on the
    /// first attempt of each write (never on blocked retries).
    lane: Option<Arc<ChannelLane>>,
    /// Seniority counter for blocked ends: each *first* registration
    /// takes the next ticket, and a waiter that is woken but loses the
    /// race for the freed slot (a running task wrote/read first without
    /// ever blocking) re-registers under its original ticket, so the
    /// wait lists stay ordered by who blocked first — not by who
    /// happened to retry last.
    next_ticket: u64,
}

/// Inserts a waiter keeping the list sorted by ticket. Fresh tickets are
/// monotonically increasing, so this is a plain append except when a
/// barged waiter re-registers with its old (lower) ticket.
fn enqueue_waiter(list: &mut VecDeque<(u64, Waiter)>, ticket: u64, waiter: Waiter) {
    let pos = list.partition_point(|(t, _)| *t < ticket);
    list.insert(pos, (ticket, waiter));
}

/// A bounded, blocking message queue between MCSE functions.
///
/// Cloning yields another handle to the same queue.
///
/// # Examples
///
/// ```
/// use rtsim_comm::MessageQueue;
/// use rtsim_core::{Processor, ProcessorConfig, TaskConfig};
/// use rtsim_kernel::{SimDuration, Simulator};
/// use rtsim_trace::TraceRecorder;
///
/// # fn main() -> Result<(), rtsim_kernel::KernelError> {
/// let mut sim = Simulator::new();
/// let rec = TraceRecorder::new();
/// let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
/// let q: MessageQueue<u32> = MessageQueue::new(&rec, "frames", 4);
///
/// let tx = q.clone();
/// cpu.spawn_task(&mut sim, TaskConfig::new("producer").priority(5), move |t| {
///     for frame in 0..3 {
///         t.execute(SimDuration::from_us(10));
///         tx.write(t, frame);
///     }
/// });
/// cpu.spawn_task(&mut sim, TaskConfig::new("consumer").priority(3), move |t| {
///     for expected in 0..3 {
///         let frame = q.read(t);
///         assert_eq!(frame, expected);
///         t.execute(SimDuration::from_us(5));
///     }
/// });
/// sim.run()?;
/// # Ok(())
/// # }
/// ```
pub struct MessageQueue<T> {
    state: Arc<Mutex<QState<T>>>,
    actor: rtsim_trace::ActorId,
    recorder: TraceRecorder,
    name: Arc<str>,
}

impl<T> Clone for MessageQueue<T> {
    fn clone(&self) -> Self {
        MessageQueue {
            state: Arc::clone(&self.state),
            actor: self.actor,
            recorder: self.recorder.clone(),
            name: Arc::clone(&self.name),
        }
    }
}

impl<T: Send> MessageQueue<T> {
    /// Creates a queue holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — use [`Rendezvous`](crate::Rendezvous)
    /// for unbuffered, fully synchronizing transfers.
    pub fn new(recorder: &TraceRecorder, name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "message queue capacity must be positive");
        let actor = recorder.register(name, ActorKind::Relation);
        MessageQueue {
            state: Arc::new(Mutex::new(QState {
                buffer: VecDeque::with_capacity(capacity),
                capacity,
                readers: VecDeque::new(),
                writers: VecDeque::new(),
                lane: None,
                next_ticket: 0,
            })),
            actor,
            recorder: recorder.clone(),
            name: Arc::from(name),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's trace actor.
    pub fn actor(&self) -> rtsim_trace::ActorId {
        self.actor
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Installs a fault plan's dropout lane: every subsequent write's
    /// *first* attempt consults it, and a dropped message vanishes in
    /// transit — the writer proceeds as if delivered, the buffer never
    /// sees it, and the trace gains a `drop-message` fault record on
    /// this relation.
    pub fn install_fault_lane(&self, lane: Arc<ChannelLane>) {
        self.state.lock().lane = Some(lane);
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.state.lock().buffer.len()
    }

    /// Returns `true` if no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking step of [`write`](MessageQueue::write): appends the
    /// message, or — on a full queue — registers the agent's waiter (the
    /// next read will wake it) and hands the message back. The caller
    /// must then suspend and retry, threading `ticket` through every
    /// retry of the *same* write: the queue stores the waiter's
    /// seniority there on first registration, and a retry that loses the
    /// freed slot to a barging task re-queues at its original FIFO
    /// position instead of the back. Used directly by the segment-mode
    /// script interpreter; [`write`](MessageQueue::write) is the
    /// blocking wrapper.
    pub fn write_attempt(
        &self,
        agent: &mut dyn Agent,
        message: T,
        ticket: &mut Option<u64>,
    ) -> Result<(), T> {
        // Fault lane: decide each message's fate exactly once, on its
        // first attempt — a retry after blocking is the same message.
        if ticket.is_none() {
            let lane = self.state.lock().lane.clone();
            if let Some(lane) = lane {
                let now = agent.now();
                if lane.should_drop(now) {
                    self.recorder
                        .fault(self.actor, now, FaultKind::DropMessage, 0);
                    return Ok(());
                }
            }
        }
        let wake = {
            let mut st = self.state.lock();
            if st.buffer.len() < st.capacity {
                st.buffer.push_back(message);
                let depth = st.buffer.len();
                let cap = st.capacity;
                let reader = st.readers.pop_front().map(|(_, w)| w);
                drop(st);
                let now = agent.now();
                self.recorder
                    .comm(agent.trace_actor(), now, self.actor, CommKind::Write);
                self.recorder.queue_depth(self.actor, now, depth, cap);
                reader
            } else {
                let t = match *ticket {
                    Some(t) => t,
                    None => {
                        let t = st.next_ticket;
                        st.next_ticket += 1;
                        *ticket = Some(t);
                        t
                    }
                };
                enqueue_waiter(&mut st.writers, t, agent.waiter());
                return Err(message);
            }
        };
        if let Some(w) = wake {
            w.wake(agent.kernel());
        }
        Ok(())
    }

    /// Appends `message`, blocking while the queue is full.
    pub fn write(&self, agent: &mut dyn Agent, message: T) {
        let mut message = message;
        let mut ticket = None;
        loop {
            match self.write_attempt(agent, message, &mut ticket) {
                Ok(()) => return,
                Err(m) => {
                    message = m;
                    agent.suspend(false);
                }
            }
        }
    }

    /// Non-blocking step of [`read`](MessageQueue::read): removes the
    /// oldest message, or — on an empty queue — registers the agent's
    /// waiter and returns `None`; the caller must suspend and retry,
    /// threading `ticket` exactly as in
    /// [`write_attempt`](MessageQueue::write_attempt).
    pub fn read_attempt(&self, agent: &mut dyn Agent, ticket: &mut Option<u64>) -> Option<T> {
        let (message, wake) = {
            let mut st = self.state.lock();
            match st.buffer.pop_front() {
                Some(m) => {
                    let depth = st.buffer.len();
                    let cap = st.capacity;
                    let writer = st.writers.pop_front().map(|(_, w)| w);
                    drop(st);
                    let now = agent.now();
                    self.recorder
                        .comm(agent.trace_actor(), now, self.actor, CommKind::Read);
                    self.recorder.queue_depth(self.actor, now, depth, cap);
                    (m, writer)
                }
                None => {
                    let t = match *ticket {
                        Some(t) => t,
                        None => {
                            let t = st.next_ticket;
                            st.next_ticket += 1;
                            *ticket = Some(t);
                            t
                        }
                    };
                    enqueue_waiter(&mut st.readers, t, agent.waiter());
                    return None;
                }
            }
        };
        if let Some(w) = wake {
            w.wake(agent.kernel());
        }
        Some(message)
    }

    /// Removes the oldest message, blocking while the queue is empty.
    pub fn read(&self, agent: &mut dyn Agent) -> T {
        let mut ticket = None;
        loop {
            match self.read_attempt(agent, &mut ticket) {
                Some(m) => return m,
                None => agent.suspend(false),
            }
        }
    }

    /// Appends without blocking; returns the message back on a full queue.
    pub fn try_write(&self, agent: &mut dyn Agent, message: T) -> Result<(), T> {
        let wake = {
            let mut st = self.state.lock();
            if st.buffer.len() >= st.capacity {
                return Err(message);
            }
            st.buffer.push_back(message);
            let depth = st.buffer.len();
            let cap = st.capacity;
            let reader = st.readers.pop_front().map(|(_, w)| w);
            drop(st);
            let now = agent.now();
            self.recorder
                .comm(agent.trace_actor(), now, self.actor, CommKind::Write);
            self.recorder.queue_depth(self.actor, now, depth, cap);
            reader
        };
        if let Some(w) = wake {
            w.wake(agent.kernel());
        }
        Ok(())
    }

    /// Removes the oldest message without blocking.
    pub fn try_read(&self, agent: &mut dyn Agent) -> Option<T> {
        let (message, wake) = {
            let mut st = self.state.lock();
            let m = st.buffer.pop_front()?;
            let depth = st.buffer.len();
            let cap = st.capacity;
            let writer = st.writers.pop_front().map(|(_, w)| w);
            drop(st);
            let now = agent.now();
            self.recorder
                .comm(agent.trace_actor(), now, self.actor, CommKind::Read);
            self.recorder.queue_depth(self.actor, now, depth, cap);
            (m, writer)
        };
        if let Some(w) = wake {
            w.wake(agent.kernel());
        }
        Some(message)
    }
}

impl<T> fmt::Debug for MessageQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MessageQueue")
            .field("name", &self.name)
            .field("depth", &st.buffer.len())
            .field("capacity", &st.capacity)
            .field("blocked_readers", &st.readers.len())
            .field("blocked_writers", &st.writers.len())
            .finish()
    }
}
