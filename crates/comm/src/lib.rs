//! # rtsim-comm — MCSE communication relations
//!
//! The communication layer of the `rtsim` project (Rust reproduction of
//! the DATE 2004 generic-RTOS-model paper). The MCSE functional model the
//! paper builds on connects functions with three relation kinds (§2), all
//! provided here (plus the rendezvous extension):
//!
//! - [`RtEvent`] — synchronization with a *fugitive* (SystemC
//!   `sc_event`-like), *boolean* or *counter* memorization policy;
//! - [`MessageQueue`] — bounded producer/consumer message passing;
//! - [`Rendezvous`] — the capacity-zero point: write and read synchronize
//!   at the transfer instant;
//! - [`SharedVar`] — data sharing under mutual exclusion, with plain,
//!   preemption-masked (the paper's priority-inversion fix),
//!   priority-inheritance and immediate-priority-ceiling protection modes.
//!
//! All relations are written against [`rtsim_core::Agent`], so the same
//! relation connects software tasks (blocking through the RTOS, possibly
//! preempting on wake) and hardware functions, on one processor or across
//! several.
//!
//! ```
//! use rtsim_comm::MessageQueue;
//! use rtsim_core::{spawn_hw_function, Agent, Processor, ProcessorConfig, TaskConfig};
//! use rtsim_kernel::{SimDuration, Simulator};
//! use rtsim_trace::TraceRecorder;
//!
//! # fn main() -> Result<(), rtsim_kernel::KernelError> {
//! let mut sim = Simulator::new();
//! let rec = TraceRecorder::new();
//! let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
//! let q: MessageQueue<u64> = MessageQueue::new(&rec, "samples", 8);
//!
//! // Hardware producer, software consumer: the same queue handles both.
//! let tx = q.clone();
//! spawn_hw_function(&mut sim, &rec, "sensor", move |hw| {
//!     for sample in 0..4 {
//!         hw.delay(SimDuration::from_us(25));
//!         tx.write(hw, sample);
//!     }
//! });
//! cpu.spawn_task(&mut sim, TaskConfig::new("dsp").priority(5), move |t| {
//!     for _ in 0..4 {
//!         let _sample = q.read(t);
//!         t.execute(SimDuration::from_us(10));
//!     }
//! });
//! sim.run()?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod event_relation;
pub mod queue;
pub mod rendezvous;
pub mod shared_var;

pub use event_relation::{EvWait, EventPolicy, RtEvent};
pub use queue::MessageQueue;
pub use rendezvous::Rendezvous;
pub use shared_var::{LockMode, ReleaseFollowup, SharedVar};

// Re-exported so `LockMode::PriorityCeiling` can be constructed without
// importing rtsim-core directly.
pub use rtsim_core::Priority;
