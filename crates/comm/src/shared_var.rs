//! The MCSE **shared variable** relation: data sharing under mutual
//! exclusion.
//!
//! "It exchanges data without any synchronization except mutual exclusion"
//! (paper §2). Accesses take CPU time while holding the lock, which is how
//! the paper's Figure 7 scenario arises: `Function_3` is preempted *inside*
//! a read of `SharedVar_1`, `Function_2` then blocks on the resource, and
//! on release is scheduled first — a bounded priority inversion.
//!
//! The paper proposes disabling preemption during the access as the fix
//! ([`LockMode::PreemptionMasked`]); we additionally provide the classic
//! priority-inheritance protocol ([`LockMode::PriorityInheritance`]) and
//! the immediate priority ceiling ([`LockMode::PriorityCeiling`]) as
//! extensions.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rtsim_kernel::sync::Mutex;
use rtsim_core::agent::{Agent, Waiter};
use rtsim_core::{Priority, TaskHandle};
use rtsim_kernel::SimDuration;
use rtsim_trace::{ActorKind, CommKind, TraceRecorder};

/// How a [`SharedVar`] protects its critical sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockMode {
    /// Plain mutual exclusion: the Figure 7 priority inversion is
    /// observable.
    #[default]
    Plain,
    /// Preemption is disabled while the lock is held (the paper's
    /// suggested fix: "disabling preemption during access to shared
    /// data").
    PreemptionMasked,
    /// The owner inherits the highest priority among blocked tasks
    /// (classic priority-inheritance protocol; extension).
    PriorityInheritance,
    /// Immediate priority ceiling ("highest locker"): a task acquiring
    /// the variable is boosted to the given ceiling priority for the
    /// whole critical section, so no task of priority up to the ceiling
    /// can even start contending — blocking is prevented rather than
    /// inherited away (OSEK/AUTOSAR-style; extension).
    PriorityCeiling(Priority),
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Plain => f.write_str("plain"),
            LockMode::PreemptionMasked => f.write_str("preemption-masked"),
            LockMode::PriorityInheritance => f.write_str("priority-inheritance"),
            LockMode::PriorityCeiling(ceiling) => {
                write!(f, "priority-ceiling({})", ceiling.0)
            }
        }
    }
}

struct VState<T> {
    value: T,
    held: bool,
    owner: Option<TaskHandle>,
    owner_base_priority: Option<Priority>,
    waiters: VecDeque<Waiter>,
}

/// What the caller must do after
/// [`SharedVar::release_attempt`] — the mode-dependent scheduling action
/// that may yield the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseFollowup {
    /// Nothing to do.
    None,
    /// Leave the critical region (`unlock_preemption`).
    UnlockPreemption,
    /// Force a scheduling decision (`reschedule`).
    Reschedule,
}

/// A shared variable with mutual exclusion, connecting MCSE functions.
///
/// Cloning yields another handle to the same variable.
///
/// # Examples
///
/// ```
/// use rtsim_comm::{LockMode, SharedVar};
/// use rtsim_core::{Processor, ProcessorConfig, TaskConfig};
/// use rtsim_kernel::{SimDuration, Simulator};
/// use rtsim_trace::TraceRecorder;
///
/// # fn main() -> Result<(), rtsim_kernel::KernelError> {
/// let mut sim = Simulator::new();
/// let rec = TraceRecorder::new();
/// let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
/// let var = SharedVar::new(&rec, "SharedVar_1", 0u32, LockMode::Plain);
///
/// let writer = var.clone();
/// cpu.spawn_task(&mut sim, TaskConfig::new("writer").priority(5), move |t| {
///     writer.write_for(t, SimDuration::from_us(10), 42);
/// });
/// cpu.spawn_task(&mut sim, TaskConfig::new("reader").priority(3), move |t| {
///     let v = var.read_for(t, SimDuration::from_us(10));
///     assert_eq!(v, 42);
/// });
/// sim.run()?;
/// # Ok(())
/// # }
/// ```
pub struct SharedVar<T> {
    state: Arc<Mutex<VState<T>>>,
    mode: LockMode,
    actor: rtsim_trace::ActorId,
    recorder: TraceRecorder,
    name: Arc<str>,
}

impl<T> Clone for SharedVar<T> {
    fn clone(&self) -> Self {
        SharedVar {
            state: Arc::clone(&self.state),
            mode: self.mode,
            actor: self.actor,
            recorder: self.recorder.clone(),
            name: Arc::clone(&self.name),
        }
    }
}

impl<T: Clone + Send> SharedVar<T> {
    /// Creates a shared variable with the given initial value and
    /// protection mode.
    pub fn new(recorder: &TraceRecorder, name: &str, initial: T, mode: LockMode) -> Self {
        let actor = recorder.register(name, ActorKind::Relation);
        SharedVar {
            state: Arc::new(Mutex::new(VState {
                value: initial,
                held: false,
                owner: None,
                owner_base_priority: None,
                waiters: VecDeque::new(),
            })),
            mode,
            actor,
            recorder: recorder.clone(),
            name: Arc::from(name),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's trace actor.
    pub fn actor(&self) -> rtsim_trace::ActorId {
        self.actor
    }

    /// The protection mode.
    pub fn mode(&self) -> LockMode {
        self.mode
    }

    /// Non-blocking acquisition attempt: takes the lock (applying the
    /// ceiling boost, the held record and the preemption mask) and
    /// returns `true`, or registers the agent's waiter (applying the
    /// inheritance boost) and returns `false` — the caller must then
    /// suspend in the waiting-for-resource state and retry. Used directly
    /// by the segment-mode script interpreter.
    pub fn acquire_attempt(&self, agent: &mut dyn Agent) -> bool {
        {
            let mut st = self.state.lock();
            if !st.held {
                st.held = true;
                if let Waiter::Task(handle) = agent.waiter() {
                    st.owner_base_priority = Some(handle.priority());
                    // Immediate priority ceiling: boost for the whole
                    // critical section, before any contender appears.
                    if let LockMode::PriorityCeiling(ceiling) = self.mode {
                        if ceiling > handle.priority() {
                            handle.set_priority(ceiling);
                        }
                    }
                    st.owner = Some(handle);
                }
                drop(st);
                self.recorder.resource_held(self.actor, agent.now(), true);
                if self.mode == LockMode::PreemptionMasked {
                    agent.lock_preemption();
                }
                return true;
            }
            // Priority inheritance: boost the owner if we outrank it.
            if self.mode == LockMode::PriorityInheritance {
                if let (Some(owner), Waiter::Task(me)) = (&st.owner, agent.waiter()) {
                    if me.priority() > owner.priority() {
                        owner.set_priority(me.priority());
                    }
                }
            }
            st.waiters.push_back(agent.waiter());
        }
        false
    }

    /// Acquires the lock, blocking in the waiting-for-resource state if
    /// another agent holds it.
    fn acquire(&self, agent: &mut dyn Agent) {
        while !self.acquire_attempt(agent) {
            agent.suspend(true);
        }
    }

    /// Non-blocking release: frees the lock, restores the owner's base
    /// priority, wakes the next waiter, and reports the mode's follow-up
    /// action — which the caller must perform (it may yield the CPU).
    pub fn release_attempt(&self, agent: &mut dyn Agent) -> ReleaseFollowup {
        let next = {
            let mut st = self.state.lock();
            debug_assert!(st.held, "release of a free shared variable");
            st.held = false;
            // Restore the owner's base priority (inheritance or ceiling).
            if matches!(
                self.mode,
                LockMode::PriorityInheritance | LockMode::PriorityCeiling(_)
            ) {
                if let (Some(owner), Some(base)) = (&st.owner, st.owner_base_priority) {
                    owner.set_priority(base);
                }
            }
            st.owner = None;
            st.owner_base_priority = None;
            st.waiters.pop_front()
        };
        self.recorder.resource_held(self.actor, agent.now(), false);
        if let Some(w) = next {
            w.wake(agent.kernel());
        }
        match self.mode {
            // Leaving the critical region may preempt the caller on the
            // spot if the woken waiter outranks it.
            LockMode::PreemptionMasked => ReleaseFollowup::UnlockPreemption,
            // The caller just dropped back to its base priority: a ready
            // task it was shielding may now outrank it.
            LockMode::PriorityCeiling(_) => ReleaseFollowup::Reschedule,
            LockMode::Plain | LockMode::PriorityInheritance => ReleaseFollowup::None,
        }
    }

    /// Releases the lock and wakes the next waiter.
    fn release(&self, agent: &mut dyn Agent) {
        match self.release_attempt(agent) {
            ReleaseFollowup::UnlockPreemption => agent.unlock_preemption(),
            ReleaseFollowup::Reschedule => agent.reschedule(),
            ReleaseFollowup::None => {}
        }
    }

    /// Clones the value. Meaningful only while the caller holds the model
    /// lock (between a successful
    /// [`acquire_attempt`](SharedVar::acquire_attempt) and the release) —
    /// interpreter plumbing for the segment execution mode.
    pub fn locked_get(&self) -> T {
        self.state.lock().value.clone()
    }

    /// Stores a value. Same locking contract as
    /// [`locked_get`](SharedVar::locked_get).
    pub fn locked_set(&self, value: T) {
        self.state.lock().value = value;
    }

    /// Records a completed access (the `CommKind::Read`/`Write` record
    /// the blocking wrappers emit after release) — interpreter plumbing.
    pub fn record_access(&self, agent: &mut dyn Agent, kind: CommKind) {
        self.recorder
            .comm(agent.trace_actor(), agent.now(), self.actor, kind);
    }

    /// Runs `body` with the lock held, giving it the agent and the value.
    /// The body may consume CPU time (`agent.execute(..)`) to model the
    /// access duration.
    pub fn with_lock<R>(&self, agent: &mut dyn Agent, body: impl FnOnce(&mut dyn Agent, &mut T) -> R) -> R {
        self.acquire(agent);
        // The kernel's one-runner discipline makes this re-lock safe: no
        // other agent can touch the value while we hold the model lock.
        let mut value = {
            let st = self.state.lock();
            st.value.clone()
        };
        let result = body(agent, &mut value);
        {
            let mut st = self.state.lock();
            st.value = value;
        }
        self.release(agent);
        result
    }

    /// Reads the value instantaneously (still subject to mutual
    /// exclusion).
    pub fn read(&self, agent: &mut dyn Agent) -> T {
        self.read_for(agent, SimDuration::ZERO)
    }

    /// Reads the value, consuming `duration` of CPU time while holding
    /// the lock — the shape of the paper's Figure 7 read operation.
    pub fn read_for(&self, agent: &mut dyn Agent, duration: SimDuration) -> T {
        let value = self.with_lock(agent, |agent, value| {
            if !duration.is_zero() {
                agent.execute(duration);
            }
            value.clone()
        });
        self.recorder
            .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Read);
        value
    }

    /// Writes the value instantaneously (still subject to mutual
    /// exclusion).
    pub fn write(&self, agent: &mut dyn Agent, value: T) {
        self.write_for(agent, SimDuration::ZERO, value);
    }

    /// Writes the value, consuming `duration` of CPU time while holding
    /// the lock.
    pub fn write_for(&self, agent: &mut dyn Agent, duration: SimDuration, value: T) {
        self.with_lock(agent, |agent, slot| {
            if !duration.is_zero() {
                agent.execute(duration);
            }
            *slot = value;
        });
        self.recorder
            .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Write);
    }
}

impl<T> fmt::Debug for SharedVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SharedVar")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("held", &st.held)
            .field("waiters", &st.waiters.len())
            .finish()
    }
}
