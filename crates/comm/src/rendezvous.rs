//! Rendezvous (unbuffered) message passing.
//!
//! The paper's message queue carries a *capacity* parameter; the
//! degenerate capacity-zero point is the classic **rendezvous**: a write
//! blocks until a reader takes the message, and a read blocks until a
//! writer offers one — both sides synchronize at the transfer instant
//! (Ada rendezvous / CSP channel semantics). [`MessageQueue`] rejects
//! capacity 0 and points here instead.
//!
//! [`MessageQueue`]: crate::MessageQueue

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rtsim_kernel::sync::Mutex;
use rtsim_core::agent::{Agent, Waiter};
use rtsim_trace::{ActorKind, CommKind, TraceRecorder};

struct RvState<T> {
    /// The in-flight message and the writer to acknowledge on take-over.
    slot: Option<(T, Waiter)>,
    readers: VecDeque<Waiter>,
    writers: VecDeque<Waiter>,
}

/// An unbuffered, fully synchronizing channel between MCSE functions.
///
/// Cloning yields another handle to the same channel. Multiple writers
/// and readers are served first-come-first-served.
///
/// # Examples
///
/// ```
/// use rtsim_comm::Rendezvous;
/// use rtsim_core::{Processor, ProcessorConfig, TaskConfig};
/// use rtsim_kernel::{SimDuration, Simulator};
/// use rtsim_trace::TraceRecorder;
///
/// # fn main() -> Result<(), rtsim_kernel::KernelError> {
/// let mut sim = Simulator::new();
/// let rec = TraceRecorder::new();
/// let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
/// let rv: Rendezvous<u32> = Rendezvous::new(&rec, "handoff");
///
/// let tx = rv.clone();
/// cpu.spawn_task(&mut sim, TaskConfig::new("offer").priority(2), move |t| {
///     tx.write(t, 7); // blocks until `take` reads, at 100 µs
///     assert_eq!(t.now().as_us(), 100);
/// });
/// cpu.spawn_task(&mut sim, TaskConfig::new("take").priority(1), move |t| {
///     t.delay(SimDuration::from_us(100));
///     assert_eq!(rv.read(t), 7);
/// });
/// sim.run()?;
/// # Ok(())
/// # }
/// ```
pub struct Rendezvous<T> {
    state: Arc<Mutex<RvState<T>>>,
    actor: rtsim_trace::ActorId,
    recorder: TraceRecorder,
    name: Arc<str>,
}

impl<T> Clone for Rendezvous<T> {
    fn clone(&self) -> Self {
        Rendezvous {
            state: Arc::clone(&self.state),
            actor: self.actor,
            recorder: self.recorder.clone(),
            name: Arc::clone(&self.name),
        }
    }
}

impl<T: Send> Rendezvous<T> {
    /// Creates a rendezvous channel.
    pub fn new(recorder: &TraceRecorder, name: &str) -> Self {
        let actor = recorder.register(name, ActorKind::Relation);
        Rendezvous {
            state: Arc::new(Mutex::new(RvState {
                slot: None,
                readers: VecDeque::new(),
                writers: VecDeque::new(),
            })),
            actor,
            recorder: recorder.clone(),
            name: Arc::from(name),
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's trace actor.
    pub fn actor(&self) -> rtsim_trace::ActorId {
        self.actor
    }

    /// Offers `message` and blocks until a reader takes it.
    pub fn write(&self, agent: &mut dyn Agent, message: T) {
        let mut message = Some(message);
        loop {
            let reader = {
                let mut st = self.state.lock();
                if st.slot.is_none() {
                    st.slot = Some((message.take().expect("message present"), agent.waiter()));
                    st.readers.pop_front()
                } else {
                    // Another writer is mid-handshake: queue up.
                    st.writers.push_back(agent.waiter());
                    None
                }
            };
            match (&message, reader) {
                (None, maybe_reader) => {
                    self.recorder
                        .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Write);
                    if let Some(r) = maybe_reader {
                        r.wake(agent.kernel());
                    }
                    // Block until the reader acknowledges the take-over.
                    agent.suspend(false);
                    return;
                }
                (Some(_), _) => {
                    agent.suspend(false);
                    // Retry: the slot freed up.
                }
            }
        }
    }

    /// Blocks until a writer offers a message and takes it, releasing the
    /// writer at the same instant.
    pub fn read(&self, agent: &mut dyn Agent) -> T {
        loop {
            let taken = {
                let mut st = self.state.lock();
                match st.slot.take() {
                    Some((message, writer)) => {
                        let next_writer = st.writers.pop_front();
                        Some((message, writer, next_writer))
                    }
                    None => {
                        st.readers.push_back(agent.waiter());
                        None
                    }
                }
            };
            match taken {
                Some((message, writer, next_writer)) => {
                    self.recorder
                        .comm(agent.trace_actor(), agent.now(), self.actor, CommKind::Read);
                    writer.wake(agent.kernel());
                    if let Some(w) = next_writer {
                        w.wake(agent.kernel());
                    }
                    return message;
                }
                None => agent.suspend(false),
            }
        }
    }
}

impl<T> fmt::Debug for Rendezvous<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Rendezvous")
            .field("name", &self.name)
            .field("offer_pending", &st.slot.is_some())
            .field("blocked_readers", &st.readers.len())
            .field("blocked_writers", &st.writers.len())
            .finish()
    }
}
