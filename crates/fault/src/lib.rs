//! `rtsim-fault`: deterministic fault injection for the RTOS model.
//!
//! The paper's model simulates healthy systems; real designs are judged
//! by how they behave when sensors drop out, arrivals jitter, and load
//! bursts past the schedulability bound. This crate describes those
//! abnormal stimuli as a [`FaultPlan`] — a pure value, seeded from the
//! campaign RNG via [`Rng::fork`] so campaigns stay bit-identical for
//! any `RTSIM_WORKERS` — and instantiates it as a [`FaultInjector`],
//! the runtime the simulation layers consult:
//!
//! - **Dropout** ([`FaultPlan::drop_probability`],
//!   [`FaultPlan::drop_window`]): queue messages and event notifications
//!   on selected comm relations are silently lost, either with a
//!   per-channel probability (drawn in channel-operation order, which is
//!   deterministic and identical across exec modes) or inside scripted
//!   time windows. The comm layer asks the channel's [`ChannelLane`] on
//!   every delivery.
//! - **Arrival jitter** ([`FaultPlan::jitter`]): periodic releases get a
//!   bounded uniform offset. The offset is a *pure function* of
//!   `(plan seed, task, activation index)` — no shared stream — so it is
//!   identical regardless of scheduling order, exec mode or worker
//!   count.
//! - **Overload bursts** ([`FaultPlan::burst`]): inside scripted
//!   windows, selected tasks' execution costs are scaled by an integer
//!   ratio.
//!
//! On the response side, a task can register a **degraded mode**
//! ([`FaultPlan::degraded`]): after `enter_after` consecutive faulted
//! activations it switches to a fallback body under a relaxed deadline,
//! and after `exit_after` consecutive healthy activations it recovers.
//! The per-task state machine lives here ([`FaultInjector::degraded_tick`]);
//! the script interpreter drives it once per activation and branches on
//! the verdict.
//!
//! A plan with zero probabilities, zero jitter bounds and no windows
//! injects nothing and records nothing: its runs are byte-identical to
//! no-fault runs, which is what keeps pre-fault goldens stable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtsim_campaign::hash::Fnv1a;
use rtsim_kernel::sync::Mutex;
use rtsim_kernel::testutil::Rng;
use rtsim_kernel::{SimDuration, SimTime};

/// Stable 64-bit stream id for a named injector family + target, so
/// every lane and jitter stream forks independently of declaration
/// order.
fn stream_id(family: &str, target: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(family.as_bytes());
    h.write(b"\0");
    h.write(target.as_bytes());
    h.finish()
}

/// How a channel loses deliveries.
#[derive(Debug, Clone, PartialEq)]
pub enum DropMode {
    /// Each delivery is lost independently with this probability.
    Probability(f64),
    /// Deliveries inside any `[from, until)` window are lost.
    Windows(Vec<(SimTime, SimTime)>),
}

/// Dropout on one comm relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutSpec {
    /// Relation name (queue or event).
    pub channel: String,
    /// When deliveries are lost.
    pub mode: DropMode,
}

/// Bounded uniform arrival jitter on one task's periodic releases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JitterSpec {
    /// Task (function) name.
    pub task: String,
    /// Largest offset ever added to a release.
    pub bound: SimDuration,
}

/// A transient overload burst: inside `[from, until)` the task's
/// execution costs are scaled by `num/den`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstSpec {
    /// Task (function) name.
    pub task: String,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Scale numerator.
    pub num: u64,
    /// Scale denominator.
    pub den: u64,
}

/// A task's registered degraded mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedSpec {
    /// Task (function) name.
    pub task: String,
    /// Channels whose drops count as faults against this task.
    pub watch: Vec<String>,
    /// Consecutive faulted activations before entering degraded mode.
    pub enter_after: u32,
    /// Consecutive healthy activations before recovering.
    pub exit_after: u32,
    /// Deadline in force while degraded.
    pub relaxed_deadline: SimDuration,
}

/// A deterministic fault-injection campaign over one simulated system.
///
/// Build with [`FaultPlan::new`] (explicit seed) or
/// [`FaultPlan::seeded`] (forked from a campaign seed), add injectors
/// with the builder methods, install into a model with
/// `SystemModel::fault_plan`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    dropouts: Vec<DropoutSpec>,
    jitters: Vec<JitterSpec>,
    bursts: Vec<BurstSpec>,
    degraded: Vec<DegradedSpec>,
}

impl FaultPlan {
    /// A plan with an explicit seed and no injectors.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan whose seed is forked from `campaign_seed` under
    /// `stream_id` — the same derivation for any worker count, so
    /// campaigns sweeping fault cells stay bit-identical under
    /// `RTSIM_WORKERS`.
    pub fn seeded(campaign_seed: u64, stream: u64) -> FaultPlan {
        FaultPlan::new(Rng::seed_from_u64(campaign_seed).fork(stream).next_u64())
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Loses each delivery on `channel` independently with probability
    /// `p`.
    pub fn drop_probability(mut self, channel: &str, p: f64) -> FaultPlan {
        self.dropouts.push(DropoutSpec {
            channel: channel.to_owned(),
            mode: DropMode::Probability(p),
        });
        self
    }

    /// Loses every delivery on `channel` inside `[from, until)`.
    /// Multiple calls for the same channel accumulate windows.
    pub fn drop_window(mut self, channel: &str, from: SimTime, until: SimTime) -> FaultPlan {
        if let Some(spec) = self.dropouts.iter_mut().find(|d| d.channel == channel) {
            if let DropMode::Windows(w) = &mut spec.mode {
                w.push((from, until));
                return self;
            }
        }
        self.dropouts.push(DropoutSpec {
            channel: channel.to_owned(),
            mode: DropMode::Windows(vec![(from, until)]),
        });
        self
    }

    /// Adds a bounded uniform offset in `[0, bound]` to each of
    /// `task`'s periodic releases.
    pub fn jitter(mut self, task: &str, bound: SimDuration) -> FaultPlan {
        self.jitters.push(JitterSpec {
            task: task.to_owned(),
            bound,
        });
        self
    }

    /// Scales `task`'s execution costs by `num/den` inside
    /// `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or the scale shrinks cost (`num < den`).
    pub fn burst(mut self, task: &str, from: SimTime, until: SimTime, num: u64, den: u64) -> FaultPlan {
        assert!(den > 0, "burst denominator must be positive");
        assert!(num >= den, "a burst scales cost up, not down");
        self.bursts.push(BurstSpec {
            task: task.to_owned(),
            from,
            until,
            num,
            den,
        });
        self
    }

    /// Registers `task`'s degraded mode: entered after `enter_after`
    /// consecutive faulted activations (a faulted activation is one
    /// released with jitter, inside a burst window, or after a drop on
    /// any watched channel), exited after `exit_after` consecutive
    /// healthy ones, with `relaxed_deadline` in force while degraded.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn degraded(
        mut self,
        task: &str,
        watch: &[&str],
        enter_after: u32,
        exit_after: u32,
        relaxed_deadline: SimDuration,
    ) -> FaultPlan {
        assert!(enter_after > 0, "enter_after must be at least 1");
        assert!(exit_after > 0, "exit_after must be at least 1");
        self.degraded.push(DegradedSpec {
            task: task.to_owned(),
            watch: watch.iter().map(|s| (*s).to_owned()).collect(),
            enter_after,
            exit_after,
            relaxed_deadline,
        });
        self
    }

    /// Returns `true` if the plan declares no injectors at all.
    pub fn is_empty(&self) -> bool {
        self.dropouts.is_empty()
            && self.jitters.is_empty()
            && self.bursts.is_empty()
            && self.degraded.is_empty()
    }

    /// Instantiates the plan's runtime.
    pub fn instantiate(&self) -> FaultInjector {
        FaultInjector::new(self.clone())
    }
}

/// The per-channel dropout decider handed to a comm relation.
///
/// `should_drop` is called once per delivery, in the channel's own
/// operation order — which the kernel makes deterministic and the
/// exec-mode equivalence suite pins as identical across modes — so
/// probability lanes replay bit-exactly.
#[derive(Debug)]
pub struct ChannelLane {
    mode: DropMode,
    rng: Mutex<Rng>,
    drops: AtomicU64,
}

impl ChannelLane {
    fn new(seed: u64, channel: &str, mode: DropMode) -> ChannelLane {
        ChannelLane {
            mode,
            rng: Mutex::new(Rng::seed_from_u64(seed).fork(stream_id("drop", channel))),
            drops: AtomicU64::new(0),
        }
    }

    /// Decides the fate of one delivery at `now`; counts drops.
    pub fn should_drop(&self, now: SimTime) -> bool {
        let drop = match &self.mode {
            DropMode::Probability(p) => self.rng.lock().gen_bool(*p),
            DropMode::Windows(windows) => windows.iter().any(|(from, until)| now >= *from && now < *until),
        };
        if drop {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        drop
    }

    /// Total deliveries dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }
}

/// A degraded-mode transition reported by [`FaultInjector::degraded_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeChange {
    /// The task just crossed its fault threshold: switch to the
    /// fallback body and relax the deadline.
    EnterDegraded,
    /// The task just completed its healthy window: restore the nominal
    /// body and deadline.
    Recover,
}

/// What the interpreter learns at an activation boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedVerdict {
    /// Run the fallback body this activation.
    pub degraded: bool,
    /// A transition happened right now (record it, adjust deadline).
    pub change: Option<ModeChange>,
    /// The deadline in force while degraded.
    pub relaxed_deadline: SimDuration,
}

struct MonitorState {
    consecutive_faulted: u32,
    consecutive_healthy: u32,
    degraded: bool,
    /// Drop totals of watched lanes at the previous tick.
    watched_drops: Vec<u64>,
}

/// The runtime of one [`FaultPlan`] over one simulated system.
///
/// Shared (via `Arc`) between the comm layer (dropout lanes) and the
/// script interpreters (jitter, bursts, degraded modes).
pub struct FaultInjector {
    plan: FaultPlan,
    lanes: BTreeMap<String, Arc<ChannelLane>>,
    monitors: BTreeMap<String, Mutex<MonitorState>>,
}

impl FaultInjector {
    /// Instantiates `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let mut lanes = BTreeMap::new();
        for spec in &plan.dropouts {
            lanes.insert(
                spec.channel.clone(),
                Arc::new(ChannelLane::new(plan.seed, &spec.channel, spec.mode.clone())),
            );
        }
        let mut monitors = BTreeMap::new();
        for spec in &plan.degraded {
            monitors.insert(
                spec.task.clone(),
                Mutex::new(MonitorState {
                    consecutive_faulted: 0,
                    consecutive_healthy: 0,
                    degraded: false,
                    watched_drops: vec![0; spec.watch.len()],
                }),
            );
        }
        FaultInjector {
            plan,
            lanes,
            monitors,
        }
    }

    /// The plan this runtime was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The dropout lane for `channel`, if the plan declares one.
    pub fn lane(&self, channel: &str) -> Option<Arc<ChannelLane>> {
        self.lanes.get(channel).cloned()
    }

    /// The jitter offset of `task`'s activation `k` — a pure function
    /// of `(plan seed, task, k)`, so replay order cannot perturb it.
    pub fn release_offset(&self, task: &str, k: u64) -> SimDuration {
        let Some(spec) = self.plan.jitters.iter().find(|j| j.task == task) else {
            return SimDuration::ZERO;
        };
        let bound = spec.bound.as_ps();
        if bound == 0 {
            return SimDuration::ZERO;
        }
        let mut rng = Rng::seed_from_u64(self.plan.seed)
            .fork(stream_id("jitter", task))
            .fork(k);
        SimDuration::from_ps(rng.gen_range(0..=bound))
    }

    /// Returns `true` if `task` is inside one of its burst windows.
    pub fn burst_active(&self, task: &str, now: SimTime) -> bool {
        self.plan
            .bursts
            .iter()
            .any(|b| b.task == task && now >= b.from && now < b.until)
    }

    /// The extra execution cost a burst adds to `cost` for `task` at
    /// `now` (zero outside every window). Integer arithmetic:
    /// `cost * num / den - cost`.
    pub fn burst_extra(&self, task: &str, now: SimTime, cost: SimDuration) -> SimDuration {
        let Some(b) = self
            .plan
            .bursts
            .iter()
            .find(|b| b.task == task && now >= b.from && now < b.until)
        else {
            return SimDuration::ZERO;
        };
        let scaled = cost.as_ps().saturating_mul(b.num) / b.den;
        SimDuration::from_ps(scaled.saturating_sub(cost.as_ps()))
    }

    /// The degraded-mode spec for `task`, if registered.
    pub fn degraded_spec(&self, task: &str) -> Option<&DegradedSpec> {
        self.plan.degraded.iter().find(|d| d.task == task)
    }

    /// Advances `task`'s degraded-mode state machine by one activation.
    ///
    /// `locally_faulted` is the interpreter's view of the activation
    /// (released with jitter or inside a burst window); the monitor
    /// additionally counts drops on the spec's watched channels since
    /// the previous tick. Returns `None` for tasks without a registered
    /// degraded mode.
    pub fn degraded_tick(
        &self,
        task: &str,
        _now: SimTime,
        locally_faulted: bool,
    ) -> Option<DegradedVerdict> {
        let spec = self.degraded_spec(task)?;
        let monitor = self.monitors.get(task)?;
        let mut st = monitor.lock();
        let mut faulted = locally_faulted;
        for (i, channel) in spec.watch.iter().enumerate() {
            let total = self.lanes.get(channel).map_or(0, |l| l.drops());
            if total > st.watched_drops[i] {
                faulted = true;
            }
            st.watched_drops[i] = total;
        }
        let mut change = None;
        if faulted {
            st.consecutive_faulted += 1;
            st.consecutive_healthy = 0;
            if !st.degraded && st.consecutive_faulted >= spec.enter_after {
                st.degraded = true;
                change = Some(ModeChange::EnterDegraded);
            }
        } else {
            st.consecutive_healthy += 1;
            st.consecutive_faulted = 0;
            if st.degraded && st.consecutive_healthy >= spec.exit_after {
                st.degraded = false;
                change = Some(ModeChange::Recover);
            }
        }
        Some(DegradedVerdict {
            degraded: st.degraded,
            change,
            relaxed_deadline: spec.relaxed_deadline,
        })
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("lanes", &self.lanes.keys().collect::<Vec<_>>())
            .field("monitors", &self.monitors.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_us(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + us(v)
    }

    #[test]
    fn probability_lane_replays_bit_exactly() {
        let plan = FaultPlan::new(7).drop_probability("q", 0.3);
        let a = plan.instantiate();
        let b = plan.instantiate();
        let la = a.lane("q").unwrap();
        let lb = b.lane("q").unwrap();
        let fa: Vec<bool> = (0..64).map(|i| la.should_drop(at(i))).collect();
        let fb: Vec<bool> = (0..64).map(|i| lb.should_drop(at(i))).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|d| *d), "p=0.3 over 64 draws should drop");
        assert!(!fa.iter().all(|d| *d));
        assert_eq!(la.drops(), fa.iter().filter(|d| **d).count() as u64);
    }

    #[test]
    fn probability_zero_never_drops() {
        let plan = FaultPlan::new(3).drop_probability("q", 0.0);
        let inj = plan.instantiate();
        let lane = inj.lane("q").unwrap();
        assert!((0..256).all(|i| !lane.should_drop(at(i))));
    }

    #[test]
    fn window_lane_drops_inside_only() {
        let plan = FaultPlan::new(0)
            .drop_window("q", at(10), at(20))
            .drop_window("q", at(40), at(41));
        let inj = plan.instantiate();
        let lane = inj.lane("q").unwrap();
        assert!(!lane.should_drop(at(9)));
        assert!(lane.should_drop(at(10)));
        assert!(lane.should_drop(at(19)));
        assert!(!lane.should_drop(at(20)));
        assert!(lane.should_drop(at(40)));
        assert!(!lane.should_drop(at(41)));
    }

    #[test]
    fn jitter_is_pure_in_task_and_activation() {
        let plan = FaultPlan::new(11).jitter("sensor", us(50));
        let inj = plan.instantiate();
        let o1 = inj.release_offset("sensor", 4);
        // Querying other activations (in any order) never perturbs it.
        let _ = inj.release_offset("sensor", 9);
        let _ = inj.release_offset("sensor", 0);
        assert_eq!(inj.release_offset("sensor", 4), o1);
        assert!(o1 <= us(50));
        assert_eq!(inj.release_offset("other", 4), SimDuration::ZERO);
        // Some activation in a reasonable range draws a nonzero offset.
        assert!((0..32).any(|k| inj.release_offset("sensor", k) > SimDuration::ZERO));
    }

    #[test]
    fn burst_scales_inside_window_only() {
        let plan = FaultPlan::new(0).burst("decoder", at(100), at(200), 3, 2);
        let inj = plan.instantiate();
        assert_eq!(inj.burst_extra("decoder", at(99), us(10)), SimDuration::ZERO);
        assert_eq!(inj.burst_extra("decoder", at(100), us(10)), us(5));
        assert_eq!(inj.burst_extra("decoder", at(199), us(10)), us(5));
        assert_eq!(inj.burst_extra("decoder", at(200), us(10)), SimDuration::ZERO);
        assert_eq!(inj.burst_extra("other", at(150), us(10)), SimDuration::ZERO);
        assert!(inj.burst_active("decoder", at(150)));
        assert!(!inj.burst_active("decoder", at(250)));
    }

    #[test]
    fn degraded_state_machine_enters_and_recovers() {
        let plan = FaultPlan::new(0).degraded("ctrl", &[], 3, 2, us(900));
        let inj = plan.instantiate();
        let tick = |f| inj.degraded_tick("ctrl", at(0), f).unwrap();
        assert_eq!(tick(true).change, None);
        assert_eq!(tick(true).change, None);
        let v = tick(true);
        assert_eq!(v.change, Some(ModeChange::EnterDegraded));
        assert!(v.degraded);
        assert_eq!(v.relaxed_deadline, us(900));
        // One healthy activation is not enough to recover.
        assert_eq!(tick(false).change, None);
        // A fault resets the healthy window.
        assert_eq!(tick(true).change, None);
        assert_eq!(tick(false).change, None);
        let v = tick(false);
        assert_eq!(v.change, Some(ModeChange::Recover));
        assert!(!v.degraded);
        assert!(inj.degraded_tick("other", at(0), true).is_none());
    }

    #[test]
    fn degraded_counts_watched_channel_drops() {
        let plan = FaultPlan::new(0)
            .drop_window("q", at(10), at(20))
            .degraded("ctrl", &["q"], 1, 1, us(900));
        let inj = plan.instantiate();
        let lane = inj.lane("q").unwrap();
        // No drops yet: healthy.
        assert!(!inj.degraded_tick("ctrl", at(5), false).unwrap().degraded);
        // A drop on the watched channel faults the next activation.
        assert!(lane.should_drop(at(15)));
        let v = inj.degraded_tick("ctrl", at(16), false).unwrap();
        assert_eq!(v.change, Some(ModeChange::EnterDegraded));
        // No further drops: recovery after one healthy activation.
        let v = inj.degraded_tick("ctrl", at(30), false).unwrap();
        assert_eq!(v.change, Some(ModeChange::Recover));
    }

    #[test]
    fn seeded_plans_are_worker_count_independent() {
        // The derivation touches only (campaign_seed, stream), never a
        // shared RNG, so any interleaving of cells yields the same plan.
        let a = FaultPlan::seeded(42, 7);
        let b = FaultPlan::seeded(42, 7);
        assert_eq!(a, b);
        assert_ne!(FaultPlan::seeded(42, 8).seed(), a.seed());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new(1).is_empty());
        assert!(!FaultPlan::new(1).jitter("t", us(1)).is_empty());
    }
}
