//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The workspace is hermetic (no hyper, no tokio), and the service needs
//! only the subset of RFC 9112 a JSON job API exercises: one request per
//! connection (`Connection: close` semantics), methods `GET` and `POST`,
//! bodies delimited by `Content-Length`. The parser is written the way
//! the campaign JSON/CSV writers are: small, strict, and loud — every
//! malformed input maps to a definite 4xx instead of a panic or a hang,
//! with hard caps on the request line, header block, and body so a
//! hostile or broken client cannot balloon memory.

use std::io::{BufRead, Write};

/// Hard cap on the request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard cap on one header line, bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on a request body, bytes.
pub const MAX_BODY: usize = 256 * 1024;

/// A parsed request: method, target path, headers, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/v1/jobs/7`.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request that could not be parsed, mapped to the 4xx status the
/// server answers with. Parsing is total: every byte sequence a client
/// can send lands either in [`Request`] or here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed syntax, bad framing, truncated body: `400`.
    BadRequest(String),
    /// Request line over [`MAX_REQUEST_LINE`]: `414`.
    UriTooLong,
    /// Body over [`MAX_BODY`]: `413`.
    BodyTooLarge(usize),
    /// Header block over its caps: `431`.
    HeadersTooLarge,
    /// The client closed the connection before sending anything; not an
    /// error worth answering (the idle half of a health-checker probe).
    ConnectionClosed,
}

impl HttpError {
    /// The status code this parse failure is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::BodyTooLarge(_) => 413,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge => 431,
            HttpError::ConnectionClosed => 400, // unanswered in practice
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(msg) => msg.clone(),
            HttpError::BodyTooLarge(n) => format!("body exceeds {MAX_BODY} bytes (claimed {n})"),
            HttpError::UriTooLong => format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
            HttpError::HeadersTooLarge => {
                format!("headers exceed {MAX_HEADERS} lines of {MAX_HEADER_LINE} bytes")
            }
            HttpError::ConnectionClosed => "connection closed before a request arrived".into(),
        }
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line of at most `max` bytes,
/// not counting the terminator. `Ok(None)` on clean EOF before any byte.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    max: usize,
    over: HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::BadRequest("truncated line (connection closed)".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header bytes".into()));
                }
                if line.len() >= max {
                    return Err(over);
                }
                line.push(byte[0]);
            }
            Err(e) => {
                return Err(HttpError::BadRequest(format!("read failed: {e}")));
            }
        }
    }
}

/// Parses one HTTP/1.1 request from `reader`.
///
/// # Errors
///
/// Every malformed, oversized, or truncated input maps to an
/// [`HttpError`] carrying its 4xx status; a connection closed before the
/// first byte is [`HttpError::ConnectionClosed`].
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let line = read_line_limited(reader, MAX_REQUEST_LINE, HttpError::UriTooLong)?
        .ok_or(HttpError::ConnectionClosed)?;
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method token {method:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE, HttpError::HeadersTooLarge)?
            .ok_or_else(|| HttpError::BadRequest("connection closed inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {v:?}")))
        })
        .transpose()?;
    if let Some(n) = content_length {
        if n > MAX_BODY {
            return Err(HttpError::BodyTooLarge(n));
        }
        body.resize(n, 0);
        reader
            .read_exact(&mut body)
            .map_err(|_| HttpError::BadRequest(format!("truncated body (expected {n} bytes)")))?;
    }

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body,
    })
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one complete `Connection: close` JSON response.
///
/// # Errors
///
/// Propagates socket write errors (the peer may have gone away; the
/// caller logs and drops the connection).
pub fn write_response<W: Write>(writer: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let req = parse(
            "POST /v1/jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"cell\":13}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(std::str::from_utf8(&req.body).unwrap(), r#"{"cell":13}"#);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse("GET / HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn malformed_inputs_map_to_4xx() {
        for (raw, status) in [
            ("GARBAGE\r\n\r\n", 400),                          // no method/path split
            ("GET /\r\n\r\n", 400),                            // missing version
            ("GET / SPDY/3\r\n\r\n", 400),                     // wrong protocol
            ("get / HTTP/1.1\r\n\r\n", 400),                   // lower-case method token
            ("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),  // header without colon
            ("POST / HTTP/1.1\r\nContent-Length: pi\r\n\r\n", 400), // unparseable length
            ("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400), // truncated body
            ("GET / HTTP/1.1\r\nHost: x\r\n", 400),            // closed inside headers
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), status, "input {raw:?} -> {err:?}");
        }
    }

    #[test]
    fn oversize_limits_have_their_own_statuses() {
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(&long_path).unwrap_err(), HttpError::UriTooLong);

        let big_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "b".repeat(MAX_HEADER_LINE));
        assert_eq!(parse(&big_header).unwrap_err(), HttpError::HeadersTooLarge);

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert_eq!(parse(&many_headers).unwrap_err(), HttpError::HeadersTooLarge);

        let huge_body = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(
            parse(&huge_body).unwrap_err(),
            HttpError::BodyTooLarge(MAX_BODY + 1)
        );
    }

    #[test]
    fn empty_connection_is_closed_not_bad() {
        assert_eq!(parse("").unwrap_err(), HttpError::ConnectionClosed);
    }

    #[test]
    fn responses_carry_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, r#"{"ok":true}"#).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
