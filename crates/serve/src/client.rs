//! A minimal blocking HTTP/1.1 client for loopback testing and load
//! generation.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` discipline: connect, write the request, read to
//! EOF, split status/headers/body. This is deliberately not a general
//! client — it exists so `rtsim-serve-flood` and the end-to-end tests
//! need no external tooling (the hermetic tree has no curl).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The status code of the response line.
    pub status: u16,
    /// The response body (this server always sends UTF-8 JSON).
    pub body: String,
}

/// Per-request I/O timeout applied to connect, read, and write.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Sends one request and reads the complete response.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed response
/// framing as `io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response")
    })?;
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "response without header block")
    })?;
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    Ok(Reply {
        status,
        body: payload.to_owned(),
    })
}

/// `GET path` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Reply> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body, convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Reply> {
    request(addr, "POST", path, Some(body))
}
