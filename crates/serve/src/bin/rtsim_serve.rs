//! `rtsim-serve` — run the simulation service until told to stop.
//!
//! ```text
//! RTSIM_SERVE_PORT=0 RTSIM_GRID_CACHE=/tmp/cache rtsim-serve
//! ```
//!
//! Prints the bound address (`rtsim-serve listening on 127.0.0.1:PORT`)
//! on stdout so scripts using an ephemeral port (`RTSIM_SERVE_PORT=0`)
//! can discover it, then serves until a client posts `/v1/shutdown`.

use rtsim_serve::{start, ServeConfig};

fn main() {
    let config = ServeConfig::from_env();
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("rtsim-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("rtsim-serve listening on {}", handle.addr());
    handle.wait();
}
