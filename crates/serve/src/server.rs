//! The simulation service: accept loop, handler pool, simulation worker
//! pool, and the shared job/result state they communicate through.
//!
//! # Request lifecycle
//!
//! A connection is accepted on the listener thread and handed to one of
//! the handler threads over a channel. The handler parses the request
//! ([`crate::http`]), routes it, writes one `Connection: close` response
//! and drops the socket. `POST /v1/jobs` resolves its body against the
//! farm registry ([`rtsim_farm::spec`]), derives the job's
//! `grid-cache-v1` key, and then takes the cheapest of three paths:
//!
//! 1. **cache hit** — the result is already in the in-memory index or
//!    the on-disk [`CacheStore`]: the job is born `done` and the
//!    response carries `"cache_hit":true` plus the result record;
//! 2. **coalesce** — the same key is already queued or running: the new
//!    job id joins its waiter list and completes when the one
//!    simulation does, without re-running anything;
//! 3. **miss** — a work item is queued for the simulation workers
//!    (bounded by the queue cap; over it the server answers `503`).
//!
//! Workers run each cell in a panic isolation cell
//! ([`rtsim_campaign::run_isolated`]), render the canonical golden line
//! ([`rtsim_farm::golden::render_line`]) — byte-identical to what a
//! one-shot `rtsim-farm`/`rtsim-grid` sweep writes — publish it to the
//! in-memory index and the disk cache, and mark every waiter done.
//!
//! # Shutdown protocol
//!
//! `POST /v1/shutdown` (or [`ServerHandle::shutdown`]) flips the
//! shutdown flag, drops the work sender so workers drain the queue and
//! exit on `Disconnected`, and self-connects once to wake the blocking
//! `accept()`. The accept loop sees the flag, exits, and drops the
//! connection sender, so handlers finish in-flight responses and exit
//! the same way. [`ServerHandle::wait`] joins everything.

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtsim_campaign::json::Json;
use rtsim_campaign::{
    env_u16, env_usize, nearest_rank_index, run_isolated, workers_from_env,
};
use rtsim_farm::registry::run_cell;
use rtsim_farm::spec::{self, ResolvedJob};
use rtsim_farm::{golden, Cell};
use rtsim_grid::CacheStore;
use rtsim_kernel::sync::{unbounded, Mutex, Receiver, RecvTimeoutError, Sender};

/// Environment variable selecting the listen port. `0` asks the OS for
/// an ephemeral port; the binary prints the real bound address in its
/// `rtsim-serve listening on ...` banner so callers can discover it,
/// and [`ServeHandle::addr`] reports it in-process.
pub const PORT_ENV: &str = "RTSIM_SERVE_PORT";
/// Environment variable sizing the simulation worker pool.
pub const WORKERS_ENV: &str = "RTSIM_SERVE_WORKERS";
/// Environment variable sizing the connection handler pool.
pub const HANDLERS_ENV: &str = "RTSIM_SERVE_HANDLERS";
/// Environment variable bounding the pending-work queue.
pub const QUEUE_ENV: &str = "RTSIM_SERVE_QUEUE";

/// How long blocked loops wait between shutdown-flag checks.
const POLL: Duration = Duration::from_millis(50);
/// Per-connection socket read/write timeout.
const CONN_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration; [`ServeConfig::from_env`] is the binary's view,
/// tests construct it directly with an ephemeral port.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen port on loopback; `0` binds an ephemeral port.
    pub port: u16,
    /// Simulation worker threads.
    pub workers: usize,
    /// Connection handler threads.
    pub handlers: usize,
    /// Maximum queued-or-running distinct simulations before `503`.
    pub queue_cap: usize,
    /// Optional persistent result cache shared with `rtsim-grid`.
    pub cache: Option<CacheStore>,
}

impl ServeConfig {
    /// Configuration from the environment: [`PORT_ENV`] (default 2004,
    /// for the paper's conference year), [`WORKERS_ENV`] (default: the
    /// campaign pool's `RTSIM_WORKERS`/parallelism heuristic),
    /// [`HANDLERS_ENV`] (default 4), [`QUEUE_ENV`] (default 1024), and
    /// the grid's `RTSIM_GRID_CACHE`. Garbage values warn once and fall
    /// back to the defaults; nothing here panics.
    pub fn from_env() -> ServeConfig {
        ServeConfig {
            port: env_u16(PORT_ENV).unwrap_or(2004),
            workers: env_usize(WORKERS_ENV)
                .filter(|&w| w > 0)
                .unwrap_or_else(workers_from_env),
            handlers: env_usize(HANDLERS_ENV).filter(|&h| h > 0).unwrap_or(4),
            queue_cap: env_usize(QUEUE_ENV).filter(|&q| q > 0).unwrap_or(1024),
            cache: CacheStore::from_env(),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobStatus {
    fn key(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One accepted job, visible at `GET /v1/jobs/<id>`.
#[derive(Debug, Clone)]
struct JobRecord {
    cell: Cell,
    key: u64,
    status: JobStatus,
    cache_hit: bool,
    result: Option<String>,
}

/// The result index: completed golden lines by cache key, plus the
/// waiter lists of keys currently queued or running. One lock because
/// the two maps must transition together (a key leaves `pending` in the
/// same critical section its line enters `results`).
#[derive(Debug, Default)]
struct ResultIndex {
    results: HashMap<u64, String>,
    pending: HashMap<u64, Vec<u64>>,
}

/// Service counters, all monotonically increasing except `queue_depth`.
#[derive(Debug, Default)]
struct Metrics {
    jobs_accepted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_coalesced: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth: AtomicU64,
    service_ns: Mutex<Vec<u64>>,
}

/// State shared by every thread of one server instance.
struct Shared {
    addr: SocketAddr,
    queue_cap: usize,
    cache: Option<CacheStore>,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    index: Mutex<ResultIndex>,
    metrics: Metrics,
    /// Taken (dropped) at shutdown so workers drain then disconnect.
    job_tx: Mutex<Option<Sender<WorkItem>>>,
    shutdown: AtomicBool,
}

/// One unit of simulation work: a resolved cell plus its cache key.
struct WorkItem {
    key: u64,
    job: ResolvedJob,
}

/// A running server: its bound address plus the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound loopback address (meaningful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers the shutdown protocol (idempotent, returns immediately).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Blocks until every server thread has exited — forever, unless
    /// [`shutdown`](Self::shutdown) is called or a client posts
    /// `/v1/shutdown`.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the worker, handler, and accept
/// threads.
///
/// # Errors
///
/// Propagates the bind failure (port in use, no loopback).
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
    let addr = listener.local_addr()?;

    let (job_tx, job_rx) = unbounded::<WorkItem>();
    let (conn_tx, conn_rx) = unbounded::<TcpStream>();
    let shared = Arc::new(Shared {
        addr,
        queue_cap: config.queue_cap,
        cache: config.cache,
        next_id: AtomicU64::new(0),
        jobs: Mutex::new(HashMap::new()),
        index: Mutex::new(ResultIndex::default()),
        metrics: Metrics::default(),
        job_tx: Mutex::new(Some(job_tx)),
        shutdown: AtomicBool::new(false),
    });

    // mpsc receivers are single-consumer; the pools share one through a
    // mutex, serialising only the *wait*, never the work.
    let job_rx = Arc::new(Mutex::new(job_rx));
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let mut threads = Vec::new();
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&job_rx);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rtsim-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn worker thread"),
        );
    }
    for i in 0..config.handlers.max(1) {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&conn_rx);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rtsim-serve-handler-{i}"))
                .spawn(move || handler_loop(&shared, &rx))
                .expect("spawn handler thread"),
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("rtsim-serve-accept".into())
                .spawn(move || accept_loop(&listener, &conn_tx, &shared))
                .expect("spawn accept thread"),
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// The idempotent shutdown trigger; see the module docs for the
/// protocol.
fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    drop(shared.job_tx.lock().take());
    // Wake the blocking accept(); the accepted probe connection is
    // dropped unanswered.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, conn_tx: &Sender<TcpStream>, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!("rtsim-serve: accept failed: {e}");
            }
        }
    }
    // conn_tx drops here; handlers drain in-flight connections and exit.
}

fn handler_loop(shared: &Arc<Shared>, conn_rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let next = conn_rx.lock().recv_timeout(POLL);
        match next {
            Ok(stream) => handle_connection(shared, &stream),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(CONN_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CONN_TIMEOUT));
    let mut reader = std::io::BufReader::new(stream);
    let (status, body, wants_shutdown) = match crate::http::parse_request(&mut reader) {
        Ok(req) => route(shared, &req),
        Err(crate::http::HttpError::ConnectionClosed) => return,
        Err(e) => (e.status(), error_body(&e.message()), false),
    };
    let mut writer = stream;
    let _ = crate::http::write_response(&mut writer, status, &body);
    if wants_shutdown {
        trigger_shutdown(shared);
    }
}

fn error_body(message: &str) -> String {
    Json::obj([("error", Json::from(message))]).to_string()
}

/// Routes one parsed request to `(status, body, wants_shutdown)`.
fn route(shared: &Shared, req: &crate::http::Request) -> (u16, String, bool) {
    let method = req.method.as_str();
    let path = req.path.as_str();
    match (method, path) {
        ("GET", "/v1/healthz") => (200, Json::obj([("ok", Json::from(true))]).to_string(), false),
        ("GET", "/v1/metrics") => (200, metrics_body(shared), false),
        ("POST", "/v1/jobs") => {
            let (status, body) = enqueue(shared, &req.body);
            (status, body, false)
        }
        ("POST", "/v1/shutdown") => (200, Json::obj([("ok", Json::from(true))]).to_string(), true),
        ("GET", _) if path.strip_prefix("/v1/jobs/").is_some() => {
            let (status, body) = job_status(shared, path.strip_prefix("/v1/jobs/").unwrap());
            (status, body, false)
        }
        ("GET", _) if path.strip_prefix("/v1/results/").is_some() => {
            let (status, body) = result_lookup(shared, path.strip_prefix("/v1/results/").unwrap());
            (status, body, false)
        }
        // Known paths with the wrong method are 405, not 404.
        (_, "/v1/healthz" | "/v1/metrics" | "/v1/jobs" | "/v1/shutdown") => {
            (405, error_body(&format!("method {method} not allowed here")), false)
        }
        (_, _) if path.starts_with("/v1/jobs/") || path.starts_with("/v1/results/") => {
            (405, error_body(&format!("method {method} not allowed here")), false)
        }
        _ => (404, error_body(&format!("no route for {path}")), false),
    }
}

/// `POST /v1/jobs`: resolve, then cache-hit / coalesce / enqueue.
fn enqueue(shared: &Shared, body: &[u8]) -> (u16, String) {
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, error_body("body is not UTF-8"));
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => return (400, error_body(&format!("bad JSON body: {e}"))),
    };
    let resolved = if let Some(cell) = json.get("cell") {
        let Some(index) = cell.as_u64() else {
            return (400, error_body("\"cell\" must be a non-negative integer"));
        };
        spec::resolve_index(index as usize)
    } else {
        let named = (
            json.get("scenario").and_then(Json::as_str),
            json.get("policy").and_then(Json::as_str),
            json.get("mode").and_then(Json::as_str),
        );
        let (Some(scenario), Some(policy), Some(mode)) = named else {
            return (
                400,
                error_body("body must carry scenario/policy/mode strings or a cell index"),
            );
        };
        // Optional SMP axis: "cores" defaults to the classic single-core
        // cells, so pre-SMP clients keep working unchanged.
        let cores = match json.get("cores") {
            None => 1,
            Some(c) => match c.as_u64().and_then(|c| u8::try_from(c).ok()) {
                Some(c) => c,
                None => return (400, error_body("\"cores\" must be an integer in 1..=64")),
            },
        };
        spec::resolve(scenario, policy, mode, cores)
    };
    let job = match resolved {
        Ok(job) => job,
        Err(e) => return (400, error_body(&e.to_string())),
    };

    let key = job.cache_key();
    shared.metrics.jobs_accepted.fetch_add(1, Ordering::Relaxed);
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;

    // Fast path 1: already completed in this process.
    let memory_line = shared.index.lock().results.get(&key).cloned();
    // Fast path 2: the persistent cache, possibly warmed by a one-shot
    // rtsim-farm / rtsim-grid sweep of the same matrix. Read outside the
    // index lock — it's disk I/O.
    let line = memory_line.or_else(|| shared.cache.as_ref().and_then(|c| c.load(key)));
    if let Some(line) = line {
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared
            .index
            .lock()
            .results
            .entry(key)
            .or_insert_with(|| line.clone());
        shared.jobs.lock().insert(
            id,
            JobRecord {
                cell: job.cell,
                key,
                status: JobStatus::Done,
                cache_hit: true,
                result: Some(line.clone()),
            },
        );
        return (200, posted_body(id, key, "done", true, Some(&line)));
    }

    // Slow path: coalesce onto in-flight work for the same key, or queue
    // a fresh work item. Re-check `results` under the lock — the key may
    // have completed between the peek above and now.
    let mut index = shared.index.lock();
    if let Some(line) = index.results.get(&key).cloned() {
        drop(index);
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.jobs.lock().insert(
            id,
            JobRecord {
                cell: job.cell,
                key,
                status: JobStatus::Done,
                cache_hit: true,
                result: Some(line.clone()),
            },
        );
        return (200, posted_body(id, key, "done", true, Some(&line)));
    }
    // The waiter entry and the job record are published while the index
    // lock is still held: a worker's first act on an item is to take
    // that same lock, so it cannot observe the item before both exist.
    if let Some(waiters) = index.pending.get_mut(&key) {
        waiters.push(id);
        shared.jobs.lock().insert(
            id,
            JobRecord {
                cell: job.cell,
                key,
                status: JobStatus::Queued,
                cache_hit: false,
                result: None,
            },
        );
        drop(index);
        shared.metrics.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
        return (202, posted_body(id, key, "queued", false, None));
    }

    if shared.metrics.queue_depth.load(Ordering::Relaxed) >= shared.queue_cap as u64 {
        drop(index);
        return (
            503,
            error_body(&format!("job queue is full ({} pending)", shared.queue_cap)),
        );
    }
    let sent = {
        let tx = shared.job_tx.lock();
        match tx.as_ref() {
            Some(tx) => tx.send(WorkItem { key, job }).is_ok(),
            None => false,
        }
    };
    if !sent {
        drop(index);
        return (503, error_body("server is shutting down"));
    }
    shared.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    index.pending.insert(key, vec![id]);
    shared.jobs.lock().insert(
        id,
        JobRecord {
            cell: job.cell,
            key,
            status: JobStatus::Queued,
            cache_hit: false,
            result: None,
        },
    );
    drop(index);
    (202, posted_body(id, key, "queued", false, None))
}

/// The body of a `POST /v1/jobs` response.
fn posted_body(id: u64, key: u64, status: &str, cache_hit: bool, result: Option<&str>) -> String {
    let mut pairs = vec![
        ("job", Json::from(id)),
        ("key", Json::from(format!("{key:016x}"))),
        ("status", Json::from(status)),
        ("cache_hit", Json::from(cache_hit)),
    ];
    if let Some(line) = result {
        pairs.push(("result", Json::parse(line).unwrap_or_else(|_| Json::from(line))));
    }
    Json::obj(pairs).to_string()
}

/// `GET /v1/jobs/<id>`.
fn job_status(shared: &Shared, tail: &str) -> (u16, String) {
    let Ok(id) = tail.parse::<u64>() else {
        return (400, error_body(&format!("bad job id {tail:?}")));
    };
    let jobs = shared.jobs.lock();
    let Some(job) = jobs.get(&id) else {
        return (404, error_body(&format!("no job {id}")));
    };
    let mut pairs = vec![
        ("job", Json::from(id)),
        ("cell", Json::from(job.cell.label())),
        ("key", Json::from(format!("{:016x}", job.key))),
        ("status", Json::from(job.status.key())),
        ("cache_hit", Json::from(job.cache_hit)),
    ];
    if let Some(line) = &job.result {
        pairs.push((
            "result",
            Json::parse(line).unwrap_or_else(|_| Json::from(line.as_str())),
        ));
    }
    if let JobStatus::Failed(message) = &job.status {
        pairs.push(("error", Json::from(message.as_str())));
    }
    (200, Json::obj(pairs).to_string())
}

/// `GET /v1/results/<key>`: the raw cached golden line, byte-identical
/// to `rtsim-farm`'s rendering of the same cell.
fn result_lookup(shared: &Shared, tail: &str) -> (u16, String) {
    let Ok(key) = u64::from_str_radix(tail, 16) else {
        return (400, error_body(&format!("bad result key {tail:?} (16 hex digits)")));
    };
    let line = shared.index.lock().results.get(&key).cloned();
    let line = line.or_else(|| shared.cache.as_ref().and_then(|c| c.load(key)));
    match line {
        Some(line) => (200, line),
        None => (404, error_body(&format!("no result for key {key:016x}"))),
    }
}

/// `GET /v1/metrics`.
fn metrics_body(shared: &Shared) -> String {
    let m = &shared.metrics;
    let mut samples = m.service_ns.lock().clone();
    samples.sort_unstable();
    // With zero completed jobs there is no service distribution to take
    // percentiles of; report explicit nulls rather than a fake 0 ns that
    // dashboards would read as "instant".
    let (p50, p99) = if samples.is_empty() {
        (Json::Null, Json::Null)
    } else {
        (
            Json::from(samples[nearest_rank_index(1, 2, samples.len())]),
            Json::from(samples[nearest_rank_index(99, 100, samples.len())]),
        )
    };
    Json::obj([
        ("jobs_accepted", Json::from(m.jobs_accepted.load(Ordering::Relaxed))),
        ("jobs_completed", Json::from(m.jobs_completed.load(Ordering::Relaxed))),
        ("jobs_failed", Json::from(m.jobs_failed.load(Ordering::Relaxed))),
        ("jobs_coalesced", Json::from(m.jobs_coalesced.load(Ordering::Relaxed))),
        ("cache_hits", Json::from(m.cache_hits.load(Ordering::Relaxed))),
        ("cache_misses", Json::from(m.cache_misses.load(Ordering::Relaxed))),
        ("queue_depth", Json::from(m.queue_depth.load(Ordering::Relaxed))),
        ("service_samples", Json::from(samples.len())),
        ("service_p50_ns", p50),
        ("service_p99_ns", p99),
    ])
    .to_string()
}

fn worker_loop(shared: &Arc<Shared>, job_rx: &Mutex<Receiver<WorkItem>>) {
    loop {
        let next = job_rx.lock().recv_timeout(POLL);
        match next {
            Ok(item) => run_work_item(shared, &item),
            Err(RecvTimeoutError::Timeout) => continue,
            // The sender is dropped by the shutdown trigger once — so a
            // disconnect means the queue is fully drained and it is time
            // to exit.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Runs one simulation and publishes its outcome to every waiter.
fn run_work_item(shared: &Shared, item: &WorkItem) {
    let started = Instant::now();
    {
        let index = shared.index.lock();
        if let Some(ids) = index.pending.get(&item.key) {
            let mut jobs = shared.jobs.lock();
            for id in ids {
                if let Some(job) = jobs.get_mut(id) {
                    job.status = JobStatus::Running;
                }
            }
        }
    }

    let outcome = run_isolated(|| run_cell(item.job.cell));

    match outcome {
        Ok(result) => {
            let line = golden::render_line(&result);
            if let Some(cache) = &shared.cache {
                if let Err(e) = cache.store(item.key, &line) {
                    eprintln!(
                        "rtsim-serve: failed to persist result {:016x}: {e}",
                        item.key
                    );
                }
            }
            let waiters = {
                let mut index = shared.index.lock();
                index.results.insert(item.key, line.clone());
                index.pending.remove(&item.key).unwrap_or_default()
            };
            let mut jobs = shared.jobs.lock();
            for id in &waiters {
                if let Some(job) = jobs.get_mut(id) {
                    job.status = JobStatus::Done;
                    job.result = Some(line.clone());
                }
            }
            shared
                .metrics
                .jobs_completed
                .fetch_add(waiters.len() as u64, Ordering::Relaxed);
        }
        Err(panic) => {
            let waiters = {
                let mut index = shared.index.lock();
                index.pending.remove(&item.key).unwrap_or_default()
            };
            let mut jobs = shared.jobs.lock();
            for id in &waiters {
                if let Some(job) = jobs.get_mut(id) {
                    job.status = JobStatus::Failed(panic.message.clone());
                }
            }
            shared
                .metrics
                .jobs_failed
                .fetch_add(waiters.len() as u64, Ordering::Relaxed);
        }
    }
    shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
    shared
        .metrics
        .service_ns
        .lock()
        .push(started.elapsed().as_nanos() as u64);
}
