//! # rtsim-serve — the long-running simulation service
//!
//! A loopback HTTP/1.1 front end over the farm registry: clients POST
//! simulation-job specs (scenario/policy/mode names or raw matrix cell
//! indices), the service schedules them on a panic-isolated worker pool,
//! and repeat queries are answered from a cache keyed by the same
//! `grid-cache-v1` formula the one-shot sweeps use — so a cache warmed
//! by `rtsim-farm`/`rtsim-grid` is hit by the server and vice versa, and
//! every result body is byte-identical to the corresponding golden line.
//!
//! The whole stack is hermetic: the HTTP layer ([`http`]) is hand-rolled
//! on `std::net::TcpListener`, as are the client ([`client`]) the flood
//! generator and the end-to-end tests use. No external crates, no async
//! runtime — blocking threads coordinated by the same
//! [`rtsim_kernel::sync`] channel/mutex wrappers the campaign pool uses.
//!
//! ## Endpoints
//!
//! | Method + path        | Meaning                                        |
//! |----------------------|------------------------------------------------|
//! | `POST /v1/jobs`      | Enqueue a job; replies with id, key, cache-hit |
//! | `GET /v1/jobs/<id>`  | Job status and (when done) its result          |
//! | `GET /v1/results/<key>` | Raw golden line for a cache key, verbatim   |
//! | `GET /v1/healthz`    | Liveness probe                                 |
//! | `GET /v1/metrics`    | Counters + p50/p99 service time                |
//! | `POST /v1/shutdown`  | Clean shutdown (drain, then exit)              |
//!
//! See [`server`] for the request lifecycle, the cache fast path, and
//! the shutdown protocol.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use server::{start, ServeConfig, ServerHandle};
