//! End-to-end service tests over a real loopback socket: the full
//! enqueue → poll → result lifecycle, the byte-identical cache
//! contract against `rtsim-farm`'s rendering, and the malformed-HTTP
//! table (the server answers 4xx and stays up).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rtsim_campaign::json::Json;
use rtsim_farm::registry::run_cell;
use rtsim_farm::{golden, spec};
use rtsim_grid::CacheStore;
use rtsim_serve::{client, start, ServeConfig, ServerHandle};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtsim-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve(tag: &str) -> (ServerHandle, PathBuf) {
    let dir = scratch(tag);
    let handle = start(ServeConfig {
        port: 0,
        workers: 2,
        handlers: 2,
        queue_cap: 64,
        cache: Some(CacheStore::new(&dir)),
    })
    .expect("bind ephemeral loopback port");
    (handle, dir)
}

fn parse(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"))
}

/// Polls `GET /v1/jobs/<id>` until the job leaves the queue.
fn await_job(addr: std::net::SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let reply = client::get(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        let json = parse(&reply.body);
        let status = json.get("status").and_then(Json::as_str).unwrap().to_owned();
        if status == "done" || status == "failed" {
            return json;
        }
        assert!(Instant::now() < deadline, "job {id} stuck {status:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn enqueue_poll_result_and_cache_hit_lifecycle() {
    let (handle, dir) = serve("lifecycle");
    let addr = handle.addr();

    // Health first: the server is up.
    let health = client::get(addr, "/v1/healthz").unwrap();
    assert_eq!((health.status, health.body.as_str()), (200, r#"{"ok":true}"#));

    // Cold enqueue by name: accepted, not a cache hit.
    let body = r#"{"scenario":"quickstart","policy":"fifo","mode":"preemptive"}"#;
    let posted = client::post(addr, "/v1/jobs", body).unwrap();
    assert_eq!(posted.status, 202, "{}", posted.body);
    let posted = parse(&posted.body);
    assert_eq!(posted.get("cache_hit").and_then(Json::as_bool), Some(false));
    let id = posted.get("job").and_then(Json::as_u64).unwrap();
    let key = posted.get("key").and_then(Json::as_str).unwrap().to_owned();

    // The job completes and its embedded result matches a direct
    // in-process run of the same cell, field for field.
    let done = await_job(addr, id);
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    let expected = {
        let job = spec::resolve("quickstart", "fifo", "preemptive", 1).unwrap();
        assert_eq!(key, format!("{:016x}", job.cache_key()));
        golden::render_line(&run_cell(job.cell))
    };
    // Byte-identical contract: the raw result body IS the golden line.
    let result = client::get(addr, &format!("/v1/results/{key}")).unwrap();
    assert_eq!((result.status, result.body), (200, expected.clone()));

    // Duplicate POST: served from cache, result embedded, same bytes.
    let dup = client::post(addr, "/v1/jobs", body).unwrap();
    assert_eq!(dup.status, 200, "{}", dup.body);
    let dup = parse(&dup.body);
    assert_eq!(dup.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(dup.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(dup.get("result").map(Json::to_string), Some(expected.clone()));

    // The persistent cache now holds the entry under the same key the
    // grid formula computes — so a grid sweep would hit it too.
    let store = CacheStore::new(&dir);
    let job = spec::resolve("quickstart", "fifo", "preemptive", 1).unwrap();
    assert_eq!(store.load(job.cache_key()), Some(expected));

    // Metrics reflect the story: one miss, one hit, nothing failed.
    let metrics = parse(&client::get(addr, "/v1/metrics").unwrap().body);
    let count = |k: &str| metrics.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(count("jobs_accepted"), 2);
    assert_eq!(count("jobs_completed"), 1);
    assert_eq!(count("cache_misses"), 1);
    assert_eq!(count("cache_hits"), 1);
    assert_eq!(count("jobs_failed"), 0);
    assert_eq!(count("queue_depth"), 0);
    assert!(count("service_p50_ns") > 0);

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_cache_warmed_by_a_one_shot_sweep_is_served_without_simulating() {
    let (handle, dir) = serve("prewarmed");
    let addr = handle.addr();

    // Warm the cache the way rtsim-farm / rtsim-grid would: store the
    // rendered golden line under the grid-formula key, out of band.
    let job = spec::resolve("paper_fig6", "edf", "cooperative", 1).unwrap();
    let line = golden::render_line(&run_cell(job.cell));
    CacheStore::new(&dir).store(job.cache_key(), &line).unwrap();

    // The very first POST for that cell is already a hit.
    let body = r#"{"scenario":"paper_fig6","policy":"edf","mode":"cooperative"}"#;
    let posted = client::post(addr, "/v1/jobs", body).unwrap();
    assert_eq!(posted.status, 200, "{}", posted.body);
    let posted = parse(&posted.body);
    assert_eq!(posted.get("cache_hit").and_then(Json::as_bool), Some(true));

    // Raw-index spec resolves to the same key and also hits.
    let by_index = client::post(addr, "/v1/jobs", &format!("{{\"cell\":{}}}", job.index)).unwrap();
    assert_eq!(by_index.status, 200, "{}", by_index.body);
    let by_index = parse(&by_index.body);
    assert_eq!(by_index.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(
        by_index.get("key").and_then(Json::as_str),
        posted.get("key").and_then(Json::as_str),
    );

    let metrics = parse(&client::get(addr, "/v1/metrics").unwrap().body);
    assert_eq!(metrics.get("cache_misses").and_then(Json::as_u64), Some(0));
    assert_eq!(metrics.get("cache_hits").and_then(Json::as_u64), Some(2));

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_before_any_job_report_null_percentiles() {
    // With zero completed jobs there is no service-time distribution:
    // p50/p99 must be explicit JSON nulls, not a misleading 0 ns.
    let (handle, dir) = serve("idle-metrics");
    let reply = client::get(handle.addr(), "/v1/metrics").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains(r#""service_p50_ns":null"#), "{}", reply.body);
    let metrics = parse(&reply.body);
    assert_eq!(metrics.get("service_samples").and_then(Json::as_u64), Some(0));
    assert_eq!(metrics.get("service_p50_ns"), Some(&Json::Null));
    assert_eq!(metrics.get("service_p99_ns"), Some(&Json::Null));
    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn port_zero_binary_banner_names_the_real_ephemeral_port() {
    // The documented script workflow: launch the binary with
    // RTSIM_SERVE_PORT=0, read the bound address off the banner line,
    // and talk to that port. Exercises the real executable end to end.
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_rtsim-serve"))
        .env("RTSIM_SERVE_PORT", "0")
        .env("RTSIM_SERVE_WORKERS", "1")
        .env("RTSIM_SERVE_HANDLERS", "1")
        .env_remove("RTSIM_GRID_CACHE")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn rtsim-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let banner = std::io::BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner line")
        .expect("readable banner");
    let addr: std::net::SocketAddr = banner
        .strip_prefix("rtsim-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("banner ends in a socket address");
    assert_ne!(addr.port(), 0, "banner must name the real port, not 0");

    // The advertised port answers; no jobs yet, so percentiles are null.
    let metrics = client::get(addr, "/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200, "{}", metrics.body);
    assert_eq!(parse(&metrics.body).get("service_p50_ns"), Some(&Json::Null));

    let stop = client::post(addr, "/v1/shutdown", "").unwrap();
    assert_eq!(stop.status, 200, "{}", stop.body);
    let status = child.wait().expect("child exits after /v1/shutdown");
    assert!(status.success(), "{status:?}");
}

/// Writes raw bytes to the socket (closing our write half so truncated
/// bodies read as EOF, not a stall) and returns the status line.
fn raw_status(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    text.lines().next().unwrap_or_default().to_owned()
}

#[test]
fn malformed_http_gets_4xx_and_the_server_stays_up() {
    let (handle, dir) = serve("malformed");
    let addr = handle.addr();

    let huge_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
    let cases: Vec<(Vec<u8>, &str)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), "400"),
        (b"get /v1/healthz HTTP/1.1\r\n\r\n".to_vec(), "400"),
        (b"GET /v1/healthz SPDY/3\r\n\r\n".to_vec(), "400"),
        (b"GET /v1/healthz HTTP/1.1\r\nno-colon\r\n\r\n".to_vec(), "400"),
        (b"POST /v1/jobs HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(), "400"),
        // Truncated body: Content-Length promises more than arrives.
        (b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"ce".to_vec(), "400"),
        (huge_line.into_bytes(), "414"),
        (b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n".to_vec(), "413"),
    ];
    for (raw, expected) in cases {
        let status = raw_status(addr, &raw);
        assert!(
            status.starts_with(&format!("HTTP/1.1 {expected} ")),
            "{:?} -> {status:?}",
            String::from_utf8_lossy(&raw),
        );
        // After every bad request the server still answers probes.
        let health = client::get(addr, "/v1/healthz").unwrap();
        assert_eq!(health.status, 200);
    }

    // Routing-level rejections: wrong method, unknown route, bad specs.
    let cases = [
        ("DELETE", "/v1/jobs", None, 405),
        ("GET", "/v1/nope", None, 404),
        ("POST", "/v1/jobs", Some(r#"{"cell":"seven"}"#), 400),
        ("POST", "/v1/jobs", Some(r#"{"scenario":"nope","policy":"edf","mode":"preemptive"}"#), 400),
        ("POST", "/v1/jobs", Some(r#"{"cell":10000}"#), 400),
        ("POST", "/v1/jobs", Some("not json"), 400),
        ("GET", "/v1/jobs/abc", None, 400),
        ("GET", "/v1/jobs/424242", None, 404),
        ("GET", "/v1/results/zzzz", None, 400),
        ("GET", "/v1/results/0000000000000000", None, 404),
    ];
    for (method, path, body, expected) in cases {
        let reply = client::request(addr, method, path, body).unwrap();
        assert_eq!(reply.status, expected, "{method} {path}: {}", reply.body);
    }

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_posts_of_an_in_flight_job_coalesce_onto_one_simulation() {
    let (handle, dir) = serve("coalesce");
    let addr = handle.addr();

    // Enqueue the same cell several times back-to-back; with only two
    // workers and one distinct key, the later POSTs either coalesce
    // onto the in-flight run or (if it already finished) hit the cache.
    let body = r#"{"scenario":"quickstart","policy":"round_robin","mode":"preemptive"}"#;
    let mut ids = Vec::new();
    for _ in 0..4 {
        let posted = client::post(addr, "/v1/jobs", body).unwrap();
        assert!(posted.status == 200 || posted.status == 202, "{}", posted.body);
        ids.push(parse(&posted.body).get("job").and_then(Json::as_u64).unwrap());
    }
    // All four jobs converge on the same bytes.
    let results: Vec<String> = ids
        .iter()
        .map(|&id| await_job(addr, id).get("result").map(Json::to_string).unwrap())
        .collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");

    // Exactly one simulation ran for the four accepted jobs.
    let metrics = parse(&client::get(addr, "/v1/metrics").unwrap().body);
    let count = |k: &str| metrics.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(count("jobs_accepted"), 4);
    assert_eq!(count("cache_misses"), 1);
    assert_eq!(count("cache_hits") + count("jobs_coalesced"), 3);

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
