//! # rtsim — a generic RTOS model for real-time systems simulation
//!
//! Facade crate of the `rtsim` workspace, the Rust reproduction of
//! *"A Generic RTOS Model for Real-time Systems Simulation with SystemC"*
//! (R. Le Moigne, O. Pasquier, J-P. Calvez — DATE 2004). It re-exports
//! the whole stack:
//!
//! - [`kernel`] — the discrete-event simulation engine (the SystemC
//!   stand-in): simulated time, events, cooperative processes;
//! - [`trace`] — TimeLine charts, statistics and measurements;
//! - [`core`] — the generic RTOS model itself: processors, tasks,
//!   scheduling policies, overheads, both implementation strategies;
//! - [`comm`] — the MCSE communication relations: events, message
//!   queues, shared variables;
//! - [`mcse`] — functional-model capture, elaboration and timing-
//!   constraint verification;
//! - [`campaign`] — deterministic parallel batch simulation: fan
//!   independent runs (sweeps, Monte-Carlo trials, ablations) out over
//!   a worker pool with bit-identical results for any `RTSIM_WORKERS`;
//! - [`grid`] — campaign-of-campaigns over parameter grids: shard a
//!   grid into independent campaigns (bit-identical merged results for
//!   any `RTSIM_GRID_SHARDS`) with a content-addressed per-job result
//!   cache (`RTSIM_GRID_CACHE`);
//! - [`farm`] — the regression farm: golden-fingerprint sweeps of every
//!   [`scenarios`] system across the whole scheduling-policy matrix,
//!   checked against pinned goldens by the `rtsim-farm` binary and
//!   sharded/cached by the `rtsim-grid` binary;
//! - [`serve`] — the long-running simulation service: a hermetic
//!   loopback HTTP/1.1 front end (`rtsim-serve`) over the farm registry
//!   with a grid-cache fast path, flood-benchmarked by
//!   `rtsim-serve-flood`;
//! - [`check`] — the schedule explorer: `rtsim-check` replays small
//!   scenarios through the Segment-mode kernel while enumerating every
//!   nondeterministic tie (dispatch, delta, timer) depth-first, prunes
//!   revisited states by canonical-trace fingerprint, and reports any
//!   invariant violation with a replayable choice-stack counterexample.
//!
//! The most common items are re-exported at the crate root.
//!
//! ## Quick start
//!
//! ```
//! use rtsim::{Processor, ProcessorConfig, SimDuration, Simulator, TaskConfig, TraceRecorder};
//!
//! # fn main() -> Result<(), rtsim::KernelError> {
//! let mut sim = Simulator::new();
//! let rec = TraceRecorder::new();
//! let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU0"));
//! cpu.spawn_task(&mut sim, TaskConfig::new("hello").priority(1), |task| {
//!     task.execute(SimDuration::from_us(42));
//! });
//! sim.run()?;
//! assert_eq!(sim.now().as_us(), 42);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for the paper's Figure 6/7 systems and
//! the MPEG-2 SoC exploration, and `rtsim-bench` for the benchmark
//! harnesses regenerating every figure of the paper's evaluation.

#![warn(missing_docs)]

pub use rtsim_campaign as campaign;
pub use rtsim_check as check;
pub use rtsim_farm as farm;
pub use rtsim_grid as grid;
pub use rtsim_farm::scenarios;
pub use rtsim_comm as comm;
pub use rtsim_core as core;
pub use rtsim_kernel as kernel;
pub use rtsim_mcse as mcse;
pub use rtsim_serve as serve;
pub use rtsim_trace as trace;

pub use rtsim_campaign::{Campaign, JobCtx, StatSummary};
pub use rtsim_grid::{CacheStore, Grid, GridReport, Record};
pub use rtsim_comm::{EventPolicy, LockMode, MessageQueue, Rendezvous, RtEvent, SharedVar};
pub use rtsim_core::{
    assign_rate_monotonic, liu_layland_bound, partition_first_fit, response_time_analysis,
    schedulable,
    spawn_hw_function, spawn_interrupt_at, spawn_interrupt_schedule, spawn_periodic_interrupt,
    spawn_polling_server, utilization, Agent, AperiodicQueue, CompletedRequest, EngineKind,
    OverheadSpec, Overheads, PeriodicTask, PollingServerConfig, Priority, Processor,
    ProcessorConfig, ResponseTime, SchedulerStats, SchedulingPolicy, TaskConfig, TaskCtx,
    TaskHandle, TaskId, TaskState, Waiter,
};
pub use rtsim_core::policies;
pub use rtsim_kernel::testutil;
pub use rtsim_kernel::{
    Event, ExecMode, KernelError, KernelStats, ProcessContext, SimDuration, SimTime, Simulator,
    Wake,
};
pub use rtsim_mcse::{
    generate_freertos, run_variants, run_variants_parallel, ConstraintReport, ElaboratedSystem,
    GeneratedCode, Io, Mapping, Message, ModelError, SystemModel, TimingConstraint, Variant,
    VariantOutcome,
};
pub use rtsim_trace::{
    write_csv, write_vcd, ActorId, ActorKind, CommKind, DurationSummary, Job, Measure, OverheadKind,
    Statistics, TimelineOptions, Trace, TraceRecorder,
};
