//! Full-stack reproduction of the paper's §5 experiments: the Figure 6
//! TimeLine system (HW `Clock` + `Function_1/2/3` under a 5 µs-overhead
//! priority-preemptive RTOS), the Figure 7 mutual-exclusion scenario, and
//! the Figure 8 statistics — all built through the MCSE model layer, on
//! both RTOS engine implementations.

use rtsim::policies::PriorityPreemptive;
use rtsim::{
    EngineKind, EventPolicy, LockMode, Mapping, Measure, Message, Overheads, SimDuration,
    SimTime, Statistics, SystemModel, TaskConfig, TaskState, TimelineOptions, TimingConstraint,
    Trace,
};

const ENGINES: [EngineKind; 2] = [EngineKind::ProcedureCall, EngineKind::DedicatedThread];

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

fn times_us(trace: &Trace, task: &str, state: TaskState) -> Vec<u64> {
    let actor = trace.actor_by_name(task).expect("actor");
    trace
        .records_for(actor)
        .filter_map(|r| match r.data {
            rtsim::trace::TraceData::State(s) if s == state => Some(r.at.as_us()),
            _ => None,
        })
        .collect()
}

/// Builds the Figure 6 system: one software processor with all three RTOS
/// overheads at 5 µs, priority-preemptive scheduling, three software
/// functions (priorities 5/3/2) and a hardware clock signalling `Clk` at
/// 100 µs and 400 µs.
fn figure6_model(engine: EngineKind) -> SystemModel {
    let mut model = SystemModel::new("figure6");
    model.event("Clk", EventPolicy::Fugitive);
    model.event("Event_1", EventPolicy::Fugitive);
    model.software_processor_with(
        "Processor",
        Box::new(PriorityPreemptive::new()),
        Overheads::uniform(us(5)),
        true,
        engine,
    );
    model.function(TaskConfig::new("Clock"), |agent, io| {
        let clk = io.event("Clk");
        agent.delay(us(100));
        agent.annotate("clk_edge");
        clk.signal(agent);
        agent.delay(us(300));
        agent.annotate("clk_edge");
        clk.signal(agent);
    });
    model.function(TaskConfig::new("Function_1").priority(5), |agent, io| {
        let clk = io.event("Clk");
        let event_1 = io.event("Event_1");
        for _ in 0..2 {
            clk.wait(agent);
            agent.execute(us(20));
            event_1.signal(agent); // point (2): awakes Function_2
            agent.execute(us(20));
        }
    });
    model.function(TaskConfig::new("Function_2").priority(3), |agent, io| {
        let event_1 = io.event("Event_1");
        for _ in 0..2 {
            event_1.wait(agent);
            agent.execute(us(30));
        }
    });
    model.function(TaskConfig::new("Function_3").priority(2), |agent, _io| {
        agent.execute(us(500));
    });
    model.map("Clock", Mapping::Hardware);
    for f in ["Function_1", "Function_2", "Function_3"] {
        model.map_to_processor(f, "Processor");
    }
    model
}

#[test]
fn figure6_timeline_reproduces_the_paper_schedule() {
    for engine in ENGINES {
        let mut system = figure6_model(engine).elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();

        // Start of simulation: the three functions are served strictly by
        // priority — Function_1 first (immediately waits), then
        // Function_2 (waits), then Function_3 starts computing at 40
        // (two dispatch overheads of 15 µs, after F1's initial 10 µs).
        assert_eq!(
            times_us(&trace, "Function_1", TaskState::Running),
            vec![10, 115, 415],
            "{engine}"
        );
        assert_eq!(
            times_us(&trace, "Function_2", TaskState::Running),
            vec![25, 170, 470],
            "{engine}"
        );
        assert_eq!(
            times_us(&trace, "Function_3", TaskState::Running),
            vec![40, 215, 515],
            "{engine}"
        );

        // Point (1): the 100 µs clock edge preempts Function_3.
        assert_eq!(
            times_us(&trace, "Function_3", TaskState::Ready),
            vec![0, 100, 400],
            "{engine}"
        );

        // Point (2): Event_1 wakes Function_2 at 135 but does NOT preempt
        // Function_1 (lower priority): Function_2 only runs at 170, after
        // Function_1 finished at 155 — the paper's case (c).
        let f2_ready = times_us(&trace, "Function_2", TaskState::Ready);
        assert!(f2_ready.contains(&135), "{engine}: {f2_ready:?}");
        assert_eq!(
            times_us(&trace, "Function_1", TaskState::Waiting),
            vec![10, 155],
            "{engine}"
        );

        // Measurement (1): clock edge at 100 → Function_1 running at 115:
        // the paper's annotated 15 µs (save + scheduling + load).
        let measure = Measure::new(&trace);
        let f1 = trace.actor_by_name("Function_1").unwrap();
        assert_eq!(measure.reaction_time("clk_edge", f1), Some(us(15)));

        // Measurement (a): Function_1 ends at 155, Function_2 resumes at
        // 170 — again 15 µs of overhead.
        // Measurement (b): Function_3 preempted at 100, preemptor runs at
        // 115 — 15 µs.
        // (All asserted by the Running/Waiting instants above.)

        // Function_3 finishes its 500 µs of work: 60 by 100, 185 more by
        // 400, the rest at 515 + 255 = 770.
        assert_eq!(
            times_us(&trace, "Function_3", TaskState::Terminated),
            vec![770],
            "{engine}"
        );
        assert_eq!(system.now(), SimTime::ZERO + us(780), "{engine}");
    }
}

#[test]
fn figure6_timeline_chart_renders_the_lanes() {
    let mut system = figure6_model(EngineKind::ProcedureCall).elaborate().unwrap();
    system.run().unwrap();
    let chart = system.timeline(&TimelineOptions {
        width: 120,
        ..TimelineOptions::default()
    });
    for lane in ["Clock", "Function_1", "Function_2", "Function_3", "legend"] {
        assert!(chart.contains(lane), "missing lane {lane}:\n{chart}");
    }
    // Function_3's lane must show running (#), ready (+) and overhead (%).
    let f3_lane = chart
        .lines()
        .find(|l| l.trim_start().starts_with("Function_3"))
        .unwrap();
    assert!(
        f3_lane.contains('#') && f3_lane.contains('+') && f3_lane.contains('%'),
        "lane: {f3_lane}"
    );
}

#[test]
fn figure6_constraints_verify_the_reaction_time() {
    let mut model = figure6_model(EngineKind::ProcedureCall);
    model.constraint(TimingConstraint::ReactionWithin {
        name: "clk-to-F1".into(),
        stimulus: "clk_edge".into(),
        reactor: "Function_1".into(),
        bound: us(15),
    });
    model.constraint(TimingConstraint::ReactionWithin {
        name: "clk-to-F1-too-tight".into(),
        stimulus: "clk_edge".into(),
        reactor: "Function_1".into(),
        bound: us(14),
    });
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();
    let report = system.verify_constraints();
    assert!(report.results[0].satisfied, "{report}");
    assert!(!report.results[1].satisfied, "{report}");
    assert_eq!(report.results[0].worst, Some(us(15)));
}

#[test]
fn figure8_statistics_match_hand_computed_ratios() {
    let mut system = figure6_model(EngineKind::ProcedureCall).elaborate().unwrap();
    system.run().unwrap();
    let horizon = SimTime::ZERO + us(780);
    let stats = system.statistics(horizon);
    let trace = system.trace();

    // Function_3 ran 500 of 780 µs: activity ratio 64.1%.
    let f3 = stats.task(trace.actor_by_name("Function_3").unwrap()).unwrap();
    assert!((f3.activity_ratio - 500.0 / 780.0).abs() < 1e-9, "{}", f3.activity_ratio);
    // Function_3 sat preempted/ready 40 + 115 + 115 = 270 µs: 34.6%.
    assert!((f3.preempted_ratio - 270.0 / 780.0).abs() < 1e-9, "{}", f3.preempted_ratio);
    assert_eq!(f3.preemptions, 2);

    // Function_1 ran 2 × 40 µs.
    let f1 = stats.task(trace.actor_by_name("Function_1").unwrap()).unwrap();
    assert!((f1.activity_ratio - 80.0 / 780.0).abs() < 1e-9);

    // Relation utilization (Figure 8 item (4)): Event_1 was signalled
    // twice and consumed twice.
    let e1 = stats.relation(trace.actor_by_name("Event_1").unwrap()).unwrap();
    assert_eq!(e1.signals, 2);
    assert_eq!(e1.reads, 2);

    // The statistics table renders.
    let table = stats.to_string();
    assert!(table.contains("Function_3"));
}

/// Figure 7: Function_3 (priority 2) is preempted by Function_1 (5)
/// *during* a read of `SharedVar_1`; Function_2 (3) then blocks on the
/// resource; when Function_3 finally releases, Function_2 preempts it.
#[test]
fn figure7_mutual_exclusion_blocking_through_the_model_layer() {
    for engine in ENGINES {
        let mut model = SystemModel::new("figure7");
        model.event("Clk", EventPolicy::Fugitive);
        model.shared_var("SharedVar_1", Message::new(0, 4), LockMode::Plain);
        model.software_processor_with(
            "Processor",
            Box::new(PriorityPreemptive::new()),
            Overheads::zero(), // keep the arithmetic readable
            true,
            engine,
        );
        model.function(TaskConfig::new("Clock"), |agent, io| {
            let clk = io.event("Clk");
            agent.delay(us(50));
            clk.signal(agent);
        });
        // Function_1: woken by the clock at t=50, computes 30 µs.
        model.function(TaskConfig::new("Function_1").priority(5), |agent, io| {
            io.event("Clk").wait(agent);
            agent.execute(us(30));
        });
        // Function_2: at t=60 (while Function_1 runs) wants the variable.
        model.function(TaskConfig::new("Function_2").priority(3), |agent, io| {
            agent.delay(us(60));
            let _ = io.var("SharedVar_1").read_for(agent, us(10));
            agent.execute(us(10));
        });
        // Function_3: reads the variable with a long 100 µs access,
        // starting immediately.
        model.function(TaskConfig::new("Function_3").priority(2), |agent, io| {
            let _ = io.var("SharedVar_1").read_for(agent, us(100));
            agent.execute(us(50));
        });
        model.map("Clock", Mapping::Hardware);
        for f in ["Function_1", "Function_2", "Function_3"] {
            model.map_to_processor(f, "Processor");
        }
        let mut system = model.elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();

        // (1) Function_3 preempted during the read at t=50; (3) preempted
        // again at t=130 when releasing the variable wakes Function_2.
        assert_eq!(
            times_us(&trace, "Function_3", TaskState::Ready),
            vec![0, 50, 130],
            "{engine}"
        );
        // (2) Function_2 blocks on the resource at t=80 (after Function_1
        // finished at 80, Function_2 runs and immediately hits the held
        // variable; Function_3 still owns it).
        assert_eq!(
            times_us(&trace, "Function_2", TaskState::WaitingResource),
            vec![80],
            "{engine}"
        );
        // Function_3 resumes at 80 (Function_2 having just blocked),
        // finishes the 100 µs read at 130 (50 µs were done by the
        // preemption at 50), releases, is preempted by Function_2, and
        // runs its final 50 µs at 150.
        let f3_run = times_us(&trace, "Function_3", TaskState::Running);
        assert_eq!(f3_run, vec![0, 80, 150], "{engine}");
        let f2_run = times_us(&trace, "Function_2", TaskState::Running);
        // 0: zero-length run before its delay; 80: runs and immediately
        // blocks on the held variable; 130: preempts Function_3 at the
        // release — the paper's point (3).
        assert_eq!(f2_run, vec![0, 80, 130], "{engine}");
        // Function_2's access: 130..140 read + 140..150 execute.
        assert_eq!(
            times_us(&trace, "Function_2", TaskState::Terminated),
            vec![150],
            "{engine}"
        );
    }
}

#[test]
fn figure6_exports_csv_and_vcd() {
    let mut system = figure6_model(EngineKind::ProcedureCall).elaborate().unwrap();
    system.run().unwrap();
    let trace = system.trace();
    let mut csv = Vec::new();
    rtsim::write_csv(&trace, &mut csv).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    // One row per record plus the header.
    assert_eq!(csv.lines().count(), trace.records().len() + 1);
    assert!(csv.contains("Function_1,state,running"));
    let mut vcd = Vec::new();
    rtsim::write_vcd(&trace, &mut vcd).unwrap();
    let vcd = String::from_utf8(vcd).unwrap();
    assert!(vcd.contains("$timescale 1 ps $end"));
    // Four task lanes (Clock + three functions), two relation lanes.
    assert_eq!(vcd.matches("$var reg 3 ").count(), 4);
    assert_eq!(vcd.matches("$var reg 32 ").count(), 2);
    // The final state change is Function_3's termination at 770 µs.
    assert!(vcd.contains("#770000000"));
}

#[test]
fn model_validation_errors() {
    let mut model = SystemModel::new("broken");
    model.function(TaskConfig::new("orphan"), |_agent, _io| {});
    let err = model.elaborate().unwrap_err();
    assert!(matches!(err, rtsim::ModelError::UnmappedFunction { .. }));

    let mut model = SystemModel::new("broken2");
    model.function(TaskConfig::new("f"), |_agent, _io| {});
    model.map_to_processor("f", "ghost-cpu");
    let err = model.elaborate().unwrap_err();
    assert!(matches!(err, rtsim::ModelError::UnknownProcessor { .. }));
}

#[test]
fn statistics_respect_engine_equivalence() {
    // Figure 8 numbers must not depend on the implementation strategy.
    fn ratios(engine: EngineKind) -> Vec<(String, f64, f64)> {
        let mut system = figure6_model(engine).elaborate().unwrap();
        system.run().unwrap();
        let trace = system.trace();
        let stats = Statistics::from_trace(&trace, SimTime::ZERO + us(780));
        stats
            .tasks()
            .map(|(id, t)| {
                (
                    trace.actor_name(id).to_owned(),
                    t.activity_ratio,
                    t.preempted_ratio,
                )
            })
            .collect()
    }
    assert_eq!(ratios(EngineKind::ProcedureCall), ratios(EngineKind::DedicatedThread));
}
