//! Golden-number regression pins over the large scenarios.
//!
//! Every number here is fully determined by the model (the stack is
//! deterministic), so any change is a *behavioural* change of the RTOS
//! model, the kernel or a scenario — it must be reviewed, not rubber-
//! stamped. Update a pin only together with an explanation of which
//! semantic change moved it.

use rtsim::scenarios::{
    ab_stress_system, automotive_system, figure6_system, injection_latencies, mpeg2_latencies,
    mpeg2_system, AutomotiveConfig, Mpeg2Config,
};
use rtsim::{DurationSummary, EngineKind, SimDuration, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

#[test]
fn figure6_pins() {
    for engine in [EngineKind::ProcedureCall, EngineKind::DedicatedThread] {
        let mut system = figure6_system(engine).elaborate().unwrap();
        system.run().unwrap();
        assert_eq!(system.now(), SimTime::ZERO + us(780), "{engine}");
        let trace = system.trace();
        assert_eq!(trace.records().len(), 73, "{engine}");
        let stats = system.processor_stats("Processor").unwrap();
        assert_eq!(stats.dispatches, 9, "{engine}");
        assert_eq!(stats.preemptions, 2, "{engine}");
        assert_eq!(stats.scheduler_runs, 9, "{engine}");
    }
}

#[test]
fn mpeg2_pins() {
    let config = Mpeg2Config {
        frames: 25,
        ..Mpeg2Config::default()
    };
    let mut system = mpeg2_system(&config).elaborate().unwrap();
    system.run().unwrap();
    assert_eq!(system.now(), SimTime::from_ps(107_840_000_000));
    let latencies = mpeg2_latencies(&system.trace());
    assert_eq!(latencies.len(), 25);
    let summary = DurationSummary::from_durations(latencies).unwrap();
    assert_eq!(summary.min, us(4_278));
    assert_eq!(summary.max, us(4_474));
    // CPU0 is the busiest software processor; its utilization is a pinned
    // fraction of the makespan.
    let util = system.processor_utilization("CPU0").unwrap();
    assert!((util - 0.4107).abs() < 0.001, "{util}");
    let stats = system.processor_stats("CPU0").unwrap();
    assert_eq!(stats.dispatches, 222);
    assert_eq!(stats.preemptions, 41);
}

#[test]
fn automotive_pins() {
    let config = AutomotiveConfig::default();
    let mut system = automotive_system(&config).elaborate().unwrap();
    system.run().unwrap();
    let latencies = injection_latencies(&system.trace());
    assert_eq!(latencies.len(), 20);
    let summary = DurationSummary::from_durations(latencies).unwrap();
    // Steady-state pulses follow a fixed 195 µs path (isr + injection +
    // RTOS overheads); occasional pulses coinciding with knock/diagnostic
    // activity pay one extra 5 µs overhead window.
    assert_eq!(summary.min, us(195));
    assert_eq!(summary.max, us(200));
    let report = system.verify_constraints();
    assert!(report.all_satisfied(), "{report}");
}

#[test]
fn ab_stress_pins() {
    let mut b = ab_stress_system(EngineKind::ProcedureCall, 6, 50)
        .elaborate()
        .unwrap();
    b.run().unwrap();
    let mut a = ab_stress_system(EngineKind::DedicatedThread, 6, 50)
        .elaborate()
        .unwrap();
    a.run().unwrap();
    // Wall-clock differs; switch counts are pinned and B's is smaller.
    let sw_b = b.kernel_stats().process_switches;
    let sw_a = a.kernel_stats().process_switches;
    assert_eq!(sw_b, 1_783);
    assert_eq!(sw_a, 2_188);
    assert!(sw_a > sw_b);
}
