//! Property-based tests over the full stack: randomized task sets checked
//! against structural invariants (one running task per processor, CPU
//! time conservation, message conservation, determinism) and against
//! classical fixed-priority response-time analysis — at the synchronous
//! critical instant the simulation must agree with the theory *exactly*.
//!
//! Runs on the in-tree `testutil` harness (seeded cases, no external
//! crates); a failure prints its `RTSIM_PROP_SEED` reproduction seed.

use rtsim::policies::PriorityPreemptive;
use rtsim::testutil::check;
use rtsim::{
    response_time_analysis, EngineKind, MessageQueue, Overheads, PeriodicTask, Priority,
    Processor, ProcessorConfig, SimDuration, SimTime, TaskConfig, TaskState, Trace, TraceRecorder,
};

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

/// Scans a trace record-by-record and asserts that at no point two tasks
/// of the traced system are Running simultaneously.
fn assert_single_runner(trace: &Trace) {
    let mut states = vec![TaskState::Created; trace.actors().len()];
    let mut running = 0usize;
    for rec in trace.records() {
        if let rtsim::trace::TraceData::State(next) = rec.data {
            let idx = rec.actor.index();
            if states[idx] == TaskState::Running && next != TaskState::Running {
                running -= 1;
            }
            if states[idx] != TaskState::Running && next == TaskState::Running {
                running += 1;
            }
            states[idx] = next;
            assert!(
                running <= 1,
                "two tasks running at {} (record seq {})",
                rec.at,
                rec.seq
            );
        }
    }
}

/// Total Running time of one task over the whole trace.
fn running_time(trace: &Trace, name: &str) -> SimDuration {
    let actor = trace.actor_by_name(name).expect("actor");
    trace
        .state_intervals(actor, trace.horizon())
        .into_iter()
        .filter(|&(_, _, s)| s == TaskState::Running)
        .map(|(start, end, _)| end - start)
        .sum()
}

/// First-job response time: first Ready instant to the first subsequent
/// Waiting/Terminated instant.
fn first_response(trace: &Trace, name: &str) -> Option<SimDuration> {
    let actor = trace.actor_by_name(name)?;
    let mut activation = None;
    for rec in trace.records_for(actor) {
        match rec.data {
            rtsim::trace::TraceData::State(TaskState::Ready) if activation.is_none() => {
                activation = Some(rec.at);
            }
            rtsim::trace::TraceData::State(TaskState::Waiting | TaskState::Terminated) => {
                return activation.map(|a| rec.at - a);
            }
            _ => {}
        }
    }
    None
}

/// Invariant: one processor never runs two tasks at once, whatever the
/// workload, and every task's total Running time equals exactly the
/// CPU time it asked for (zero overheads, run to completion).
#[test]
fn single_runner_and_cpu_conservation() {
    check(
        24,
        |rng| {
            (
                // (execute us, delay us, priority)
                rng.gen_vec(1..6, |r| {
                    (
                        r.gen_range(1u64..50),
                        r.gen_range(0u64..30),
                        r.gen_range(1u32..10),
                    )
                }),
                rng.gen_range(1u64..4),
            )
        },
        |(specs, rounds)| {
            let rounds = *rounds;
            let mut sim = rtsim::Simulator::new();
            let rec = TraceRecorder::new();
            let cpu = Processor::new(&mut sim, &rec, ProcessorConfig::new("CPU"));
            for (i, &(exec_us, delay_us, prio)) in specs.iter().enumerate() {
                cpu.spawn_task(
                    &mut sim,
                    TaskConfig::new(&format!("t{i}")).priority(prio),
                    move |t| {
                        for _ in 0..rounds {
                            t.execute(us(exec_us));
                            t.delay(us(delay_us));
                        }
                    },
                );
            }
            sim.run().unwrap();
            let trace = rec.snapshot();
            assert_single_runner(&trace);
            for (i, &(exec_us, _, _)) in specs.iter().enumerate() {
                let expected = us(exec_us) * rounds;
                assert_eq!(
                    running_time(&trace, &format!("t{i}")),
                    expected,
                    "task t{i} CPU time not conserved"
                );
            }
        },
    );
}

/// At the synchronous critical instant, simulated first-job response
/// times equal exact fixed-priority response-time analysis, for any
/// schedulable task set with distinct priorities.
#[test]
fn simulation_matches_response_time_analysis() {
    check(
        24,
        |rng| rng.gen_vec(1..5, |r| (r.gen_range(1u64..20), r.gen_range(50u64..200))),
        |raw| {
            // Build tasks with distinct priorities: index 0 = highest.
            let n = raw.len() as u32;
            let tasks: Vec<PeriodicTask> = raw
                .iter()
                .enumerate()
                .map(|(i, &(wcet, period))| {
                    PeriodicTask::new(
                        &format!("t{i}"),
                        us(wcet),
                        us(period),
                        Priority(n - i as u32),
                    )
                })
                .collect();
            let rta = response_time_analysis(&tasks, SimDuration::ZERO);
            if !rta.iter().all(|r| r.schedulable) {
                // The proptest version discarded unschedulable sets via
                // prop_assume!; here the case simply passes vacuously.
                return;
            }

            // Simulate with *periodic* re-arrivals: the analysis charges a
            // job with every re-activation of its interferers, so the
            // simulation must produce them. All tasks release synchronously
            // at t = 0 — the critical instant.
            let mut sim = rtsim::Simulator::new();
            let rec = TraceRecorder::new();
            let cpu = Processor::new(
                &mut sim,
                &rec,
                ProcessorConfig::new("CPU").policy(PriorityPreemptive::new()),
            );
            let horizon = tasks.iter().map(|t| t.period).max().expect("tasks") * 2;
            for task in &tasks {
                let wcet = task.wcet;
                let period = task.period;
                let jobs = horizon / period + 1;
                cpu.spawn_task(
                    &mut sim,
                    TaskConfig::new(&task.name).priority(task.priority.0),
                    move |t| {
                        // Anchor releases at absolute time zero (synchronous
                        // release): job k is released at k*T, exactly as the
                        // analysis assumes. Anchoring at first dispatch would
                        // skew every re-arrival by the initial queueing delay.
                        for k in 1..=jobs {
                            t.execute(wcet);
                            let next = rtsim::SimTime::ZERO + period * k;
                            let now = t.now();
                            if next > now {
                                t.delay(next - now);
                            }
                        }
                    },
                );
            }
            sim.run().unwrap();
            let trace = rec.snapshot();
            for (task, analysis) in tasks.iter().zip(&rta) {
                let simulated = first_response(&trace, &task.name).expect("job completed");
                assert_eq!(
                    Some(simulated),
                    analysis.worst,
                    "task {} at the critical instant",
                    task.name
                );
            }
        },
    );
}

/// Messages cross a queue between two processors unduplicated, in
/// order, and completely, for any producer/consumer timing.
#[test]
fn queue_conservation_across_processors() {
    check(
        24,
        |rng| {
            (
                rng.gen_range(1usize..20),
                rng.gen_range(1usize..8),
                rng.gen_range(0u64..20),
                rng.gen_range(0u64..20),
            )
        },
        |&(count, capacity, producer_gap, consumer_cost)| {
            let mut sim = rtsim::Simulator::new();
            let rec = TraceRecorder::new();
            let cpu_a = Processor::new(&mut sim, &rec, ProcessorConfig::new("A"));
            let cpu_b = Processor::new(&mut sim, &rec, ProcessorConfig::new("B"));
            let q: MessageQueue<usize> = MessageQueue::new(&rec, "link", capacity);
            let received = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));

            let tx = q.clone();
            cpu_a.spawn_task(&mut sim, TaskConfig::new("producer").priority(1), move |t| {
                for k in 0..count {
                    if producer_gap > 0 {
                        t.delay(us(producer_gap));
                    }
                    tx.write(t, k);
                }
            });
            let sink = std::sync::Arc::clone(&received);
            cpu_b.spawn_task(&mut sim, TaskConfig::new("consumer").priority(1), move |t| {
                for _ in 0..count {
                    let k = q.read(t);
                    if consumer_cost > 0 {
                        t.execute(us(consumer_cost));
                    }
                    sink.lock().unwrap().push(k);
                }
            });
            sim.run().unwrap();
            let received = received.lock().unwrap();
            assert_eq!(&*received, &(0..count).collect::<Vec<_>>());
        },
    );
}

/// The full stack is deterministic: the same random model produces a
/// bit-identical trace on every run, under both engines separately.
#[test]
fn full_stack_determinism() {
    check(
        24,
        |rng| {
            rng.gen_vec(2..5, |r| {
                (
                    r.gen_range(1u64..30),
                    r.gen_range(1u64..30),
                    r.gen_range(1u32..8),
                )
            })
        },
        |specs| {
            for engine in [EngineKind::ProcedureCall, EngineKind::DedicatedThread] {
                let run = |specs: &[(u64, u64, u32)]| {
                    let mut sim = rtsim::Simulator::new();
                    let rec = TraceRecorder::new();
                    let cpu = Processor::new(
                        &mut sim,
                        &rec,
                        ProcessorConfig::new("CPU")
                            .engine(engine)
                            .overheads(Overheads::uniform(SimDuration::from_ns(700))),
                    );
                    for (i, &(exec_us, delay_us, prio)) in specs.iter().enumerate() {
                        cpu.spawn_task(
                            &mut sim,
                            TaskConfig::new(&format!("t{i}")).priority(prio),
                            move |t| {
                                for _ in 0..3 {
                                    t.execute(us(exec_us));
                                    t.delay(us(delay_us));
                                }
                            },
                        );
                    }
                    sim.run().unwrap();
                    let trace = rec.snapshot();
                    let summary: Vec<(u64, u32, String)> = trace
                        .records()
                        .iter()
                        .map(|r| (r.at.as_ps(), r.actor.index() as u32, format!("{:?}", r.data)))
                        .collect();
                    (summary, sim.now())
                };
                assert_eq!(run(specs), run(specs));
            }
        },
    );
}

/// Round-robin fairness: equal-priority, always-ready tasks receive
/// CPU shares within one quantum of each other.
#[test]
fn round_robin_is_fair() {
    check(
        24,
        |rng| (rng.gen_range(2usize..5), rng.gen_range(5u64..20)),
        |&(n_tasks, quantum_us)| {
            use rtsim::policies::RoundRobin;
            let total = us(200);
            let mut sim = rtsim::Simulator::new();
            let rec = TraceRecorder::new();
            let cpu = Processor::new(
                &mut sim,
                &rec,
                ProcessorConfig::new("CPU").policy(RoundRobin::new(us(quantum_us))),
            );
            for i in 0..n_tasks {
                cpu.spawn_task(&mut sim, TaskConfig::new(&format!("t{i}")), move |t| {
                    t.execute(total);
                });
            }
            // Stop mid-flight, while everyone still has work.
            sim.run_until(SimTime::ZERO + us(150)).unwrap();
            let trace = rec.snapshot();
            let shares: Vec<u64> = (0..n_tasks)
                .map(|i| running_time(&trace, &format!("t{i}")).as_us())
                .collect();
            let max = *shares.iter().max().unwrap();
            let min = *shares.iter().min().unwrap();
            assert!(
                max - min <= quantum_us,
                "unfair shares {shares:?} with quantum {quantum_us}"
            );
        },
    );
}
