//! Cross-policy behavioural laws, checked on the shared scenario set.
//!
//! Where `tests/goldens/farm.jsonl` pins *exact* behaviour, these tests
//! pin *relationships* that must hold whatever the exact numbers are:
//! EDF dominating rate-monotonic on an over-utilized workload,
//! round-robin's quantum accounting conserving compute time, and the
//! non-preemptive mode never preempting.

use rtsim::policies::{
    EarliestDeadlineFirst, Fifo, GlobalEdf, PriorityPreemptive, RateMonotonic, RoundRobin,
};
use rtsim::scenarios::contended_system;
use rtsim::{
    assign_rate_monotonic, partition_first_fit, ActorKind, Measure, Overheads, PeriodicTask,
    Priority, SchedulingPolicy, SimDuration, SimTime, SystemModel, TaskConfig, TaskState,
};

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

/// A full-utilization implicit-deadline pair: T1 = (period 10 ms, cost
/// 5 ms), T2 = (period 14 ms, cost 7 ms). Total utilization is exactly
/// 1.0, above the two-task rate-monotonic bound (~0.828) but within
/// EDF's: the textbook workload EDF schedules and fixed priorities miss.
fn edf_vs_rm_workload() -> SystemModel {
    let mut model = SystemModel::new("edf_vs_rm");
    model.software_processor("CPU", Overheads::zero());
    for (name, period_us, cost_us) in [("t1", 10_000u64, 5_000u64), ("t2", 14_000, 7_000)] {
        let cfg = TaskConfig::new(name).deadline(us(period_us)).priority(1);
        model.periodic_function(cfg, us(period_us), us(cost_us), 10);
        model.map_to_processor(name, "CPU");
    }
    model
}

fn run_misses(policy: impl Fn() -> Box<dyn SchedulingPolicy>) -> u64 {
    let mut model = edf_vs_rm_workload();
    model.override_schedulers(true, |_| policy());
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();
    system.processor_stats("CPU").unwrap().deadline_misses
}

#[test]
fn edf_meets_deadlines_where_rate_monotonic_misses() {
    let edf = run_misses(|| Box::new(EarliestDeadlineFirst::new()));
    let rm = run_misses(|| Box::new(RateMonotonic::new()));
    assert_eq!(edf, 0, "EDF must schedule a U=1.0 implicit-deadline set");
    assert!(rm > 0, "rate-monotonic must miss above the Liu-Layland bound");
    assert!(edf <= rm);
}

/// Dhall's task set scaled to microseconds: one near-full-utilization
/// heavy task plus two light tasks whose shorter period gives them the
/// earlier deadlines. On two cores, global EDF lets the light jobs hog
/// both cores at every release, so the heavy job starts too late to
/// meet its deadline — while the per-core utilizations are low enough
/// that a first-fit partition under rate-monotonic meets everything.
fn dhall_tasks() -> Vec<PeriodicTask> {
    vec![
        PeriodicTask::new("heavy", us(1_000), us(1_100), Priority(1)),
        PeriodicTask::new("light0", us(400), us(1_000), Priority(1)),
        PeriodicTask::new("light1", us(400), us(1_000), Priority(1)),
    ]
}

fn dhall_misses(model: SystemModel) -> u64 {
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();
    system.processor_stats("CPU").unwrap().deadline_misses
}

#[test]
fn partitioned_rm_beats_global_edf_on_the_dhall_workload() {
    // Global: one ready queue over both cores, migration allowed.
    let mut global = SystemModel::new("dhall_global");
    global.software_processor("CPU", Overheads::zero());
    global.processor_cores("CPU", 2);
    for t in dhall_tasks() {
        let cfg = TaskConfig::new(&t.name).priority(t.priority.0).deadline(t.deadline);
        global.periodic_function(cfg, t.period, t.wcet, 3);
        global.map_to_processor(&t.name, "CPU");
    }
    global.override_schedulers(true, |_| Box::new(GlobalEdf::new()));

    // Partitioned: the analysis helpers place the heavy task alone on
    // core 0 and both light tasks on core 1; pinning makes it so.
    let tasks = assign_rate_monotonic(dhall_tasks());
    let bins = partition_first_fit(&tasks, 2).expect("the Dhall set partitions on two cores");
    let mut partitioned = SystemModel::new("dhall_partitioned");
    partitioned.software_processor("CPU", Overheads::zero());
    partitioned.processor_cores("CPU", 2);
    for (core, bin) in bins.iter().enumerate() {
        for &i in bin {
            let t = &tasks[i];
            let cfg = TaskConfig::new(&t.name)
                .priority(t.priority.0)
                .deadline(t.deadline)
                .pin_to_core(core);
            partitioned.periodic_function(cfg, t.period, t.wcet, 3);
            partitioned.map_to_processor(&t.name, "CPU");
        }
    }
    partitioned.override_schedulers(true, |_| Box::new(RateMonotonic::new()));

    let global_misses = dhall_misses(global);
    let partitioned_misses = dhall_misses(partitioned);
    assert!(
        global_misses > 0,
        "global EDF must exhibit the Dhall effect on this set"
    );
    assert_eq!(
        partitioned_misses, 0,
        "partitioned rate-monotonic must meet every deadline"
    );
}

#[test]
fn round_robin_quantum_accounting_conserves_compute() {
    // Three equal tasks released together, each demanding exactly 1 ms,
    // sliced by a 200 us quantum with zero overheads: however the slices
    // interleave, total Running time must equal total demanded compute,
    // and the quantum must actually expire.
    let mut model = SystemModel::new("rr_accounting");
    model.software_processor("CPU", Overheads::zero());
    for i in 0..3u32 {
        let name = format!("t{i}");
        model.function(TaskConfig::new(&name).priority(1), |agent, _io| {
            agent.execute(us(1_000));
        });
        model.map_to_processor(&name, "CPU");
    }
    model.override_schedulers(true, |_| Box::new(RoundRobin::new(us(200))));
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();

    let end = system.now();
    assert_eq!(end, SimTime::ZERO + us(3_000), "zero-overhead makespan");
    let trace = system.trace();
    let measure = Measure::new(&trace);
    let total_running: SimDuration = trace
        .actors_of_kind(ActorKind::Task)
        .map(|a| measure.time_in_state(a, TaskState::Running, SimTime::ZERO, end))
        .sum();
    assert_eq!(total_running, us(3_000));

    let stats = system.processor_stats("CPU").unwrap();
    // 15 quantums of work; the final quantum of each task completes the
    // task rather than expiring, and nobody is left to displace the last
    // task standing — but plenty of expirations must be counted.
    assert!(stats.quantum_expirations >= 10, "{stats:?}");
    assert_eq!(stats.deadline_misses, 0);
}

#[test]
fn non_preemptive_mode_never_records_a_preemption() {
    type MakePolicy = fn() -> Box<dyn SchedulingPolicy>;
    let policies: [(&str, MakePolicy); 4] = [
        ("priority", || Box::new(PriorityPreemptive::new())),
        ("fifo", || Box::new(Fifo::new())),
        ("edf", || Box::new(EarliestDeadlineFirst::new())),
        ("rr", || Box::new(RoundRobin::new(us(200)))),
    ];
    for (name, make) in policies {
        let mut model = contended_system();
        model.override_schedulers(false, |_| make());
        let mut system = model.elaborate().unwrap();
        system.run().unwrap();
        let stats = system.processor_stats("CPU").unwrap();
        assert_eq!(
            stats.preemptions, 0,
            "cooperative {name} preempted: {stats:?}"
        );
        // The workload still completes: every task reaches Terminated.
        // (Job counts are not comparable here — overrun activations merge
        // into one back-to-back job when nothing preempts them.)
        let trace = system.trace();
        for task in ["urgent", "mid0", "mid1", "bg"] {
            let actor = trace.actor_by_name(task).unwrap();
            assert_eq!(
                trace.state_sequence(actor).last(),
                Some(&TaskState::Terminated),
                "cooperative {name}: {task} never finished"
            );
        }
    }
}

#[test]
fn preemptive_priority_does_preempt_the_same_workload() {
    // The control for the test above: same scenario, preemptive mode.
    let mut model = contended_system();
    model.override_schedulers(true, |_| Box::new(PriorityPreemptive::new()));
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();
    assert!(system.processor_stats("CPU").unwrap().preemptions > 0);
}
