//! Cross-policy behavioural laws, checked on the shared scenario set.
//!
//! Where `tests/goldens/farm.jsonl` pins *exact* behaviour, these tests
//! pin *relationships* that must hold whatever the exact numbers are:
//! EDF dominating rate-monotonic on an over-utilized workload,
//! round-robin's quantum accounting conserving compute time, and the
//! non-preemptive mode never preempting.

use rtsim::policies::{
    EarliestDeadlineFirst, Fifo, PriorityPreemptive, RateMonotonic, RoundRobin,
};
use rtsim::scenarios::contended_system;
use rtsim::{
    ActorKind, Measure, Overheads, SchedulingPolicy, SimDuration, SimTime, SystemModel,
    TaskConfig, TaskState,
};

fn us(v: u64) -> SimDuration {
    SimDuration::from_us(v)
}

/// A full-utilization implicit-deadline pair: T1 = (period 10 ms, cost
/// 5 ms), T2 = (period 14 ms, cost 7 ms). Total utilization is exactly
/// 1.0, above the two-task rate-monotonic bound (~0.828) but within
/// EDF's: the textbook workload EDF schedules and fixed priorities miss.
fn edf_vs_rm_workload() -> SystemModel {
    let mut model = SystemModel::new("edf_vs_rm");
    model.software_processor("CPU", Overheads::zero());
    for (name, period_us, cost_us) in [("t1", 10_000u64, 5_000u64), ("t2", 14_000, 7_000)] {
        let cfg = TaskConfig::new(name).deadline(us(period_us)).priority(1);
        model.periodic_function(cfg, us(period_us), us(cost_us), 10);
        model.map_to_processor(name, "CPU");
    }
    model
}

fn run_misses(policy: impl Fn() -> Box<dyn SchedulingPolicy>) -> u64 {
    let mut model = edf_vs_rm_workload();
    model.override_schedulers(true, |_| policy());
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();
    system.processor_stats("CPU").unwrap().deadline_misses
}

#[test]
fn edf_meets_deadlines_where_rate_monotonic_misses() {
    let edf = run_misses(|| Box::new(EarliestDeadlineFirst::new()));
    let rm = run_misses(|| Box::new(RateMonotonic::new()));
    assert_eq!(edf, 0, "EDF must schedule a U=1.0 implicit-deadline set");
    assert!(rm > 0, "rate-monotonic must miss above the Liu-Layland bound");
    assert!(edf <= rm);
}

#[test]
fn round_robin_quantum_accounting_conserves_compute() {
    // Three equal tasks released together, each demanding exactly 1 ms,
    // sliced by a 200 us quantum with zero overheads: however the slices
    // interleave, total Running time must equal total demanded compute,
    // and the quantum must actually expire.
    let mut model = SystemModel::new("rr_accounting");
    model.software_processor("CPU", Overheads::zero());
    for i in 0..3u32 {
        let name = format!("t{i}");
        model.function(TaskConfig::new(&name).priority(1), |agent, _io| {
            agent.execute(us(1_000));
        });
        model.map_to_processor(&name, "CPU");
    }
    model.override_schedulers(true, |_| Box::new(RoundRobin::new(us(200))));
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();

    let end = system.now();
    assert_eq!(end, SimTime::ZERO + us(3_000), "zero-overhead makespan");
    let trace = system.trace();
    let measure = Measure::new(&trace);
    let total_running: SimDuration = trace
        .actors_of_kind(ActorKind::Task)
        .map(|a| measure.time_in_state(a, TaskState::Running, SimTime::ZERO, end))
        .sum();
    assert_eq!(total_running, us(3_000));

    let stats = system.processor_stats("CPU").unwrap();
    // 15 quantums of work; the final quantum of each task completes the
    // task rather than expiring, and nobody is left to displace the last
    // task standing — but plenty of expirations must be counted.
    assert!(stats.quantum_expirations >= 10, "{stats:?}");
    assert_eq!(stats.deadline_misses, 0);
}

#[test]
fn non_preemptive_mode_never_records_a_preemption() {
    type MakePolicy = fn() -> Box<dyn SchedulingPolicy>;
    let policies: [(&str, MakePolicy); 4] = [
        ("priority", || Box::new(PriorityPreemptive::new())),
        ("fifo", || Box::new(Fifo::new())),
        ("edf", || Box::new(EarliestDeadlineFirst::new())),
        ("rr", || Box::new(RoundRobin::new(us(200)))),
    ];
    for (name, make) in policies {
        let mut model = contended_system();
        model.override_schedulers(false, |_| make());
        let mut system = model.elaborate().unwrap();
        system.run().unwrap();
        let stats = system.processor_stats("CPU").unwrap();
        assert_eq!(
            stats.preemptions, 0,
            "cooperative {name} preempted: {stats:?}"
        );
        // The workload still completes: every task reaches Terminated.
        // (Job counts are not comparable here — overrun activations merge
        // into one back-to-back job when nothing preempts them.)
        let trace = system.trace();
        for task in ["urgent", "mid0", "mid1", "bg"] {
            let actor = trace.actor_by_name(task).unwrap();
            assert_eq!(
                trace.state_sequence(actor).last(),
                Some(&TaskState::Terminated),
                "cooperative {name}: {task} never finished"
            );
        }
    }
}

#[test]
fn preemptive_priority_does_preempt_the_same_workload() {
    // The control for the test above: same scenario, preemptive mode.
    let mut model = contended_system();
    model.override_schedulers(true, |_| Box::new(PriorityPreemptive::new()));
    let mut system = model.elaborate().unwrap();
    system.run().unwrap();
    assert!(system.processor_stats("CPU").unwrap().preemptions > 0);
}
